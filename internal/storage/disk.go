package storage

import (
	"container/list"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultDiskCapacity bounds a disk tier whose options left Capacity zero:
// large enough to hold a real training job's working set, small enough not
// to silently fill a workstation disk.
const DefaultDiskCapacity = 4 << 30

// DiskOptions tunes a Disk tier.
type DiskOptions struct {
	// Capacity is the byte budget of the on-disk cache; least recently
	// used objects are deleted once it is exceeded. Zero means
	// DefaultDiskCapacity; negative means unbounded.
	Capacity int64
}

// DiskStats is a point-in-time copy of a Disk tier's counters.
type DiskStats struct {
	// Hits counts Gets served from the local disk instead of the origin.
	Hits int64
	// WarmHits counts the subset of Hits served from files that were
	// already on disk when the tier was opened — the warm-start payoff: a
	// restarted training job re-reading chunks its previous incarnation
	// fetched.
	WarmHits int64
	// Misses counts Gets that fell through to the origin.
	Misses int64
	// Evictions counts objects deleted to stay under Capacity.
	Evictions int64
	// Bypassed counts objects larger than Capacity that could not be
	// cached at all.
	Bypassed int64
	// CorruptionsDetected counts disk reads whose bytes failed CRC32C
	// verification against a seeded digest; the poisoned file is deleted
	// and the read falls through to the origin.
	CorruptionsDetected int64
	// UsedBytes and Entries describe the resident on-disk population.
	UsedBytes int64
	Entries   int64
}

// Disk is the local-disk tier of the §3.6 provider chain: a byte cache of
// origin objects persisted under a local directory, sitting between the
// in-memory LRU and the (remote) origin — RAM over disk over origin. Unlike
// the RAM cache it survives the process: a restarted training job reopens
// the same directory and starts warm, re-reading the chunks its previous
// incarnation already paid origin round trips for (the warm population is
// discovered by scanning the directory at construction and its hits are
// ledgered separately as WarmHits).
//
// Bytes read back from disk are verified: the tier keeps a CRC32C digest
// registry — recorded on every admit and seeded from the dataset's
// per-tensor checksum manifests at Open (storage.SeedDigests walks the
// chain) — so a file corrupted or half-written while the process was down
// is detected, deleted, and transparently re-fetched from the origin
// instead of poisoning the epoch. Files that predate checksums (no seeded
// digest) are served unverified, exactly like Verify's legacy behavior; the
// chunk-level footer above the storage chain backstops them.
//
// Writes are write-through (origin first, then disk), and the on-disk files
// are published atomically (temp file + fsync + rename, the FS provider's
// protocol), so a crash mid-admit leaves no torn cache entries — at worst a
// .tmp-* orphan that the next scan ignores.
type Disk struct {
	origin Provider
	files  *FS
	cap    int64

	mu      sync.Mutex
	items   map[string]*list.Element // key -> *diskEntry element
	order   *list.List               // front = most recently used
	used    int64
	digests map[string]uint32

	hits        atomic.Int64
	warmHits    atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	bypassed    atomic.Int64
	corruptions atomic.Int64
}

type diskEntry struct {
	key  string
	size int64
	// warm marks an entry discovered on disk at construction time — the
	// previous process's population — rather than admitted by this one.
	warm bool
}

// NewDisk opens (creating if needed) a disk tier rooted at dir in front of
// origin. Objects already present under dir are indexed as the warm-start
// population, ordered least-recently-modified first so eviction under a
// shrunken capacity drops the stalest files.
func NewDisk(origin Provider, dir string, opts DiskOptions) (*Disk, error) {
	files, err := NewFS(dir)
	if err != nil {
		return nil, err
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = DefaultDiskCapacity
	}
	d := &Disk{
		origin:  origin,
		files:   files,
		cap:     capacity,
		items:   make(map[string]*list.Element),
		order:   list.New(),
		digests: make(map[string]uint32),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// Capacity is the tier's effective byte bound after defaulting: negative
// means unbounded.
func (d *Disk) Capacity() int64 { return d.cap }

// scan indexes the directory's existing files as warm entries, oldest at
// the LRU tail, then evicts down to capacity (the tier may have been
// reopened smaller than it was written).
func (d *Disk) scan() error {
	type found struct {
		key  string
		size int64
		mod  int64
	}
	var warm []found
	root := d.files.Root()
	err := filepath.WalkDir(root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() || strings.HasPrefix(de.Name(), ".tmp-") {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		warm = append(warm, found{key: filepath.ToSlash(rel), size: info.Size(), mod: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(warm, func(i, j int) bool { return warm[i].mod < warm[j].mod })
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range warm {
		d.items[f.key] = d.order.PushFront(&diskEntry{key: f.key, size: f.size, warm: true})
		d.used += f.size
	}
	d.evictLocked()
	return nil
}

// evictLocked deletes least-recently-used entries (and their files) until
// the tier fits its capacity. Caller holds d.mu.
func (d *Disk) evictLocked() {
	for d.cap >= 0 && d.used > d.cap {
		back := d.order.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*diskEntry)
		d.order.Remove(back)
		delete(d.items, ent.key)
		d.used -= ent.size
		d.evictions.Add(1)
		os.Remove(d.files.path(ent.key))
	}
}

// Origin returns the wrapped provider.
func (d *Disk) Origin() Provider { return d.origin }

// Unwrap returns the wrapped provider (the chain-walking alias of Origin).
func (d *Disk) Unwrap() Provider { return d.origin }

// Root returns the directory backing the tier.
func (d *Disk) Root() string { return d.files.Root() }

// Stats reports the tier's counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	used, entries := d.used, int64(len(d.items))
	d.mu.Unlock()
	return DiskStats{
		Hits:                d.hits.Load(),
		WarmHits:            d.warmHits.Load(),
		Misses:              d.misses.Load(),
		Evictions:           d.evictions.Load(),
		Bypassed:            d.bypassed.Load(),
		CorruptionsDetected: d.corruptions.Load(),
		UsedBytes:           used,
		Entries:             entries,
	}
}

// SeedDigest registers the expected CRC32C for key, typically from a
// dataset's chunk checksum manifests at Open; disk reads of the key are
// verified against it from then on.
func (d *Disk) SeedDigest(key string, crc uint32) {
	d.mu.Lock()
	d.digests[key] = crc
	d.mu.Unlock()
}

// touch marks a cached key as used and reports whether it exists and came
// from the warm-start population.
func (d *Disk) touch(key string) (size int64, warm, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, found := d.items[key]
	if !found {
		return 0, false, false
	}
	d.order.MoveToFront(el)
	ent := el.Value.(*diskEntry)
	return ent.size, ent.warm, true
}

// forget drops key's index entry and file (used when the file is missing or
// fails verification).
func (d *Disk) forget(key string) {
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		ent := el.Value.(*diskEntry)
		d.order.Remove(el)
		delete(d.items, key)
		d.used -= ent.size
	}
	d.mu.Unlock()
	os.Remove(d.files.path(key))
}

// digest returns the seeded/recorded digest for key, if any.
func (d *Disk) digest(key string) (uint32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	crc, ok := d.digests[key]
	return crc, ok
}

// readCached serves key from disk if present and intact; warm reports the
// warm-start provenance. A missing, unreadable, or corrupt file is forgotten
// (and deleted) so the caller falls through to the origin.
func (d *Disk) readCached(ctx context.Context, key string) (data []byte, warm, ok bool) {
	_, warm, ok = d.touch(key)
	if !ok {
		return nil, false, false
	}
	data, err := d.files.Get(ctx, key)
	if err != nil {
		d.forget(key)
		return nil, false, false
	}
	if want, known := d.digest(key); known && Checksum(data) != want {
		d.corruptions.Add(1)
		d.forget(key)
		return nil, false, false
	}
	return data, warm, true
}

// admit writes data under key (atomically) and indexes it, evicting LRU
// entries over capacity. The stored digest is recorded so later disk reads
// verify. Objects larger than the whole capacity are bypassed.
func (d *Disk) admit(ctx context.Context, key string, data []byte) {
	if d.cap >= 0 && int64(len(data)) > d.cap {
		d.bypassed.Add(1)
		return
	}
	if err := d.files.Put(ctx, key, data); err != nil {
		return // cache population is best-effort; the caller has the bytes
	}
	crc := Checksum(data)
	d.mu.Lock()
	d.digests[key] = crc
	if el, ok := d.items[key]; ok {
		ent := el.Value.(*diskEntry)
		d.used += int64(len(data)) - ent.size
		ent.size = int64(len(data))
		ent.warm = false
		d.order.MoveToFront(el)
	} else {
		d.items[key] = d.order.PushFront(&diskEntry{key: key, size: int64(len(data))})
		d.used += int64(len(data))
	}
	d.evictLocked()
	d.mu.Unlock()
}

// Get implements Provider: disk first (verified), origin on miss, with the
// fetched bytes admitted for the next process.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if data, warm, ok := d.readCached(ctx, key); ok {
		d.hits.Add(1)
		if warm {
			d.warmHits.Add(1)
		}
		return data, nil
	}
	d.misses.Add(1)
	data, err := d.origin.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	d.admit(ctx, key, data)
	return data, nil
}

// GetRange implements Provider. Cached objects serve the range from the
// local file; misses go to the origin without promoting the object (range
// reads are the streaming sub-chunk path — caching whole objects for them
// would inflate the tier exactly like the RAM cache refuses to).
func (d *Disk) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if _, _, ok := d.touch(key); ok {
		if data, err := d.files.GetRange(ctx, key, offset, length); err == nil {
			d.hits.Add(1)
			return data, nil
		}
		// Clamp errors must not be masked by an origin retry with the same
		// bounds; treat only missing/unreadable files as a cache miss.
		if _, statErr := os.Stat(d.files.path(key)); statErr == nil {
			return d.files.GetRange(ctx, key, offset, length)
		}
		d.forget(key)
	}
	d.misses.Add(1)
	return d.origin.GetRange(ctx, key, offset, length)
}

// GetRanges implements BatchProvider: whole-object requests present on disk
// are served locally (verified), and only the remainder travels to the
// origin — as one batch, so coalesced fetch plans stay coalesced. Forwarded
// whole objects are admitted on the way back. Unlike a pure origin
// BatchProvider, entries after a mid-batch failure may still be non-nil
// when they were served from disk.
func (d *Disk) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(reqs))
	var fwd []RangeReq
	var fwdIdx []int
	for i, r := range reqs {
		if r.whole() {
			if data, warm, ok := d.readCached(ctx, r.Key); ok {
				d.hits.Add(1)
				if warm {
					d.warmHits.Add(1)
				}
				out[i] = data
				continue
			}
			d.misses.Add(1)
		}
		fwd = append(fwd, r)
		fwdIdx = append(fwdIdx, i)
	}
	if len(fwd) == 0 {
		return out, nil
	}
	got, err := GetRanges(ctx, d.origin, fwd)
	for j, data := range got {
		if data == nil {
			continue
		}
		out[fwdIdx[j]] = data
		if fwd[j].whole() {
			d.admit(ctx, fwd[j].Key, data)
		}
	}
	return out, err
}

// Put implements Provider: write-through, origin first.
func (d *Disk) Put(ctx context.Context, key string, data []byte) error {
	if err := d.origin.Put(ctx, key, data); err != nil {
		return err
	}
	d.admit(ctx, key, data)
	return nil
}

// Delete implements Provider and drops the local copy and digest.
func (d *Disk) Delete(ctx context.Context, key string) error {
	d.forget(key)
	d.mu.Lock()
	delete(d.digests, key)
	d.mu.Unlock()
	return d.origin.Delete(ctx, key)
}

// Exists implements Provider.
func (d *Disk) Exists(ctx context.Context, key string) (bool, error) {
	if _, _, ok := d.touch(key); ok {
		return true, nil
	}
	return d.origin.Exists(ctx, key)
}

// List implements Provider. Listing always consults the origin: the tier
// holds a subset and cannot answer authoritatively.
func (d *Disk) List(ctx context.Context, prefix string) ([]string, error) {
	return d.origin.List(ctx, prefix)
}

// Size implements Provider.
func (d *Disk) Size(ctx context.Context, key string) (int64, error) {
	if size, _, ok := d.touch(key); ok {
		return size, nil
	}
	return d.origin.Size(ctx, key)
}
