package storage

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
)

// Prefix exposes a sub-tree of a provider as its own flat namespace,
// the way each dataset version lives in its own sub-directory (§4.2).
type Prefix struct {
	inner  Provider
	prefix string
}

// NewPrefix returns a view of inner rooted at prefix. A trailing slash is
// appended if missing.
func NewPrefix(inner Provider, prefix string) *Prefix {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Prefix{inner: inner, prefix: prefix}
}

func (p *Prefix) key(k string) string { return p.prefix + k }

// Unwrap returns the wrapped provider. Prefix forwards inner errors
// unchanged, so ErrNotFound / ErrTransient classification survives it.
func (p *Prefix) Unwrap() Provider { return p.inner }

// Get implements Provider.
func (p *Prefix) Get(ctx context.Context, key string) ([]byte, error) {
	return p.inner.Get(ctx, p.key(key))
}

// GetRange implements Provider.
func (p *Prefix) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return p.inner.GetRange(ctx, p.key(key), offset, length)
}

// GetRanges implements BatchProvider: keys are rewritten into the sub-tree
// and the batch forwarded, so coalesced fetch plans survive a Prefix in the
// chain as one round trip.
func (p *Prefix) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	inner := make([]RangeReq, len(reqs))
	for i, r := range reqs {
		r.Key = p.key(r.Key)
		inner[i] = r
	}
	return GetRanges(ctx, p.inner, inner)
}

// Put implements Provider.
func (p *Prefix) Put(ctx context.Context, key string, data []byte) error {
	return p.inner.Put(ctx, p.key(key), data)
}

// Delete implements Provider.
func (p *Prefix) Delete(ctx context.Context, key string) error {
	return p.inner.Delete(ctx, p.key(key))
}

// Exists implements Provider.
func (p *Prefix) Exists(ctx context.Context, key string) (bool, error) {
	return p.inner.Exists(ctx, p.key(key))
}

// List implements Provider; returned keys are relative to the prefix.
func (p *Prefix) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := p.inner.List(ctx, p.key(prefix))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, p.prefix)
	}
	return out, nil
}

// Size implements Provider.
func (p *Prefix) Size(ctx context.Context, key string) (int64, error) {
	return p.inner.Size(ctx, p.key(key))
}

// Counting wraps a provider and tallies operations and bytes moved, used by
// benchmarks to report request counts alongside wall time. All counters are
// atomic: read them with Snapshot and zero them with Reset, so a benchmark
// can reset between phases while readers are still in flight without racing.
type Counting struct {
	inner Provider

	gets, rangeGets, batchGets, batchRanges atomic.Int64
	puts, deletes, lists                    atomic.Int64
	bytesRead, bytesWritten                 atomic.Int64
}

// NewCounting wraps inner with operation counters.
func NewCounting(inner Provider) *Counting { return &Counting{inner: inner} }

// Unwrap returns the wrapped provider.
func (c *Counting) Unwrap() Provider { return c.inner }

// CountingStats is a point-in-time copy of a Counting wrapper's counters.
type CountingStats struct {
	// Gets, RangeGets, Puts, Deletes and Lists count operations by kind.
	Gets, RangeGets, Puts, Deletes, Lists int64
	// BatchGets counts GetRanges calls — each is ONE origin request no
	// matter how many ranges it carries (the batch-pricing contract Sim
	// models), which is what lets a bench assert "N chunks, ≪N requests".
	BatchGets int64
	// BatchRanges counts the ranges carried inside those batch requests, so
	// coverage (how many chunks moved) stays observable next to the request
	// count.
	BatchRanges int64
	// BytesRead and BytesWritten total successful payload transfer.
	BytesRead, BytesWritten int64
}

// Requests is the read-path request count: whole-object gets, range gets,
// and batched gets, each batch counted once.
func (s CountingStats) Requests() int64 { return s.Gets + s.RangeGets + s.BatchGets }

// Snapshot copies the current counter values.
func (c *Counting) Snapshot() CountingStats {
	return CountingStats{
		Gets:         c.gets.Load(),
		RangeGets:    c.rangeGets.Load(),
		BatchGets:    c.batchGets.Load(),
		BatchRanges:  c.batchRanges.Load(),
		Puts:         c.puts.Load(),
		Deletes:      c.deletes.Load(),
		Lists:        c.lists.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// Reset atomically zeroes every counter, starting a fresh measurement
// window.
func (c *Counting) Reset() {
	c.gets.Store(0)
	c.rangeGets.Store(0)
	c.batchGets.Store(0)
	c.batchRanges.Store(0)
	c.puts.Store(0)
	c.deletes.Store(0)
	c.lists.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
}

// Get implements Provider.
func (c *Counting) Get(ctx context.Context, key string) ([]byte, error) {
	c.gets.Add(1)
	data, err := c.inner.Get(ctx, key)
	if err == nil {
		c.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

// GetRange implements Provider.
func (c *Counting) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	c.rangeGets.Add(1)
	data, err := c.inner.GetRange(ctx, key, offset, length)
	if err == nil {
		c.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

// GetRanges implements BatchProvider. The whole batch counts as ONE request
// (BatchGets) with its fan-in recorded separately (BatchRanges): that is
// the pricing model of a ranged multi-get against an object store, and the
// ledger benches use to prove coalescing engaged.
func (c *Counting) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.batchGets.Add(1)
	c.batchRanges.Add(int64(len(reqs)))
	out, err := GetRanges(ctx, c.inner, reqs)
	for _, data := range out {
		if data != nil {
			c.bytesRead.Add(int64(len(data)))
		}
	}
	return out, err
}

// Put implements Provider.
func (c *Counting) Put(ctx context.Context, key string, data []byte) error {
	c.puts.Add(1)
	c.bytesWritten.Add(int64(len(data)))
	return c.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (c *Counting) Delete(ctx context.Context, key string) error {
	c.deletes.Add(1)
	return c.inner.Delete(ctx, key)
}

// Exists implements Provider.
func (c *Counting) Exists(ctx context.Context, key string) (bool, error) {
	return c.inner.Exists(ctx, key)
}

// List implements Provider.
func (c *Counting) List(ctx context.Context, prefix string) ([]string, error) {
	c.lists.Add(1)
	return c.inner.List(ctx, prefix)
}

// Size implements Provider.
func (c *Counting) Size(ctx context.Context, key string) (int64, error) {
	return c.inner.Size(ctx, key)
}

// Requests returns the total read-path request count (each batched
// multi-get counts once).
func (c *Counting) Requests() int64 {
	return c.gets.Load() + c.rangeGets.Load() + c.batchGets.Load()
}

// Flaky injects failures into a provider for failure-injection tests: every
// Nth read-path operation returns err.
type Flaky struct {
	inner Provider
	every int64
	err   error

	mu    sync.Mutex
	count int64
}

// NewFlaky returns a provider that fails every n-th read with err. Pass a
// Transient-wrapped error to make the failures recoverable by a Retry layer;
// see Faulty for rate-based schedules, stalls and partial reads.
func NewFlaky(inner Provider, n int64, err error) *Flaky {
	return &Flaky{inner: inner, every: n, err: err}
}

// Unwrap returns the wrapped provider.
func (f *Flaky) Unwrap() Provider { return f.inner }

func (f *Flaky) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.every > 0 && f.count%f.every == 0 {
		return f.err
	}
	return nil
}

// Get implements Provider.
func (f *Flaky) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

// GetRange implements Provider.
func (f *Flaky) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.GetRange(ctx, key, offset, length)
}

// Put implements Provider.
func (f *Flaky) Put(ctx context.Context, key string, data []byte) error {
	return f.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (f *Flaky) Delete(ctx context.Context, key string) error { return f.inner.Delete(ctx, key) }

// Exists implements Provider.
func (f *Flaky) Exists(ctx context.Context, key string) (bool, error) {
	return f.inner.Exists(ctx, key)
}

// List implements Provider.
func (f *Flaky) List(ctx context.Context, prefix string) ([]string, error) {
	return f.inner.List(ctx, prefix)
}

// Size implements Provider.
func (f *Flaky) Size(ctx context.Context, key string) (int64, error) {
	return f.inner.Size(ctx, key)
}
