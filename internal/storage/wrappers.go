package storage

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
)

// Prefix exposes a sub-tree of a provider as its own flat namespace,
// the way each dataset version lives in its own sub-directory (§4.2).
type Prefix struct {
	inner  Provider
	prefix string
}

// NewPrefix returns a view of inner rooted at prefix. A trailing slash is
// appended if missing.
func NewPrefix(inner Provider, prefix string) *Prefix {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Prefix{inner: inner, prefix: prefix}
}

func (p *Prefix) key(k string) string { return p.prefix + k }

// Get implements Provider.
func (p *Prefix) Get(ctx context.Context, key string) ([]byte, error) {
	return p.inner.Get(ctx, p.key(key))
}

// GetRange implements Provider.
func (p *Prefix) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return p.inner.GetRange(ctx, p.key(key), offset, length)
}

// Put implements Provider.
func (p *Prefix) Put(ctx context.Context, key string, data []byte) error {
	return p.inner.Put(ctx, p.key(key), data)
}

// Delete implements Provider.
func (p *Prefix) Delete(ctx context.Context, key string) error {
	return p.inner.Delete(ctx, p.key(key))
}

// Exists implements Provider.
func (p *Prefix) Exists(ctx context.Context, key string) (bool, error) {
	return p.inner.Exists(ctx, p.key(key))
}

// List implements Provider; returned keys are relative to the prefix.
func (p *Prefix) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := p.inner.List(ctx, p.key(prefix))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, p.prefix)
	}
	return out, nil
}

// Size implements Provider.
func (p *Prefix) Size(ctx context.Context, key string) (int64, error) {
	return p.inner.Size(ctx, p.key(key))
}

// Counting wraps a provider and tallies operations and bytes moved, used by
// benchmarks to report request counts alongside wall time.
type Counting struct {
	inner Provider

	Gets, RangeGets, Puts, Deletes, Lists int64
	BytesRead, BytesWritten               int64
}

// NewCounting wraps inner with operation counters.
func NewCounting(inner Provider) *Counting { return &Counting{inner: inner} }

// Get implements Provider.
func (c *Counting) Get(ctx context.Context, key string) ([]byte, error) {
	atomic.AddInt64(&c.Gets, 1)
	data, err := c.inner.Get(ctx, key)
	if err == nil {
		atomic.AddInt64(&c.BytesRead, int64(len(data)))
	}
	return data, err
}

// GetRange implements Provider.
func (c *Counting) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	atomic.AddInt64(&c.RangeGets, 1)
	data, err := c.inner.GetRange(ctx, key, offset, length)
	if err == nil {
		atomic.AddInt64(&c.BytesRead, int64(len(data)))
	}
	return data, err
}

// Put implements Provider.
func (c *Counting) Put(ctx context.Context, key string, data []byte) error {
	atomic.AddInt64(&c.Puts, 1)
	atomic.AddInt64(&c.BytesWritten, int64(len(data)))
	return c.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (c *Counting) Delete(ctx context.Context, key string) error {
	atomic.AddInt64(&c.Deletes, 1)
	return c.inner.Delete(ctx, key)
}

// Exists implements Provider.
func (c *Counting) Exists(ctx context.Context, key string) (bool, error) {
	return c.inner.Exists(ctx, key)
}

// List implements Provider.
func (c *Counting) List(ctx context.Context, prefix string) ([]string, error) {
	atomic.AddInt64(&c.Lists, 1)
	return c.inner.List(ctx, prefix)
}

// Size implements Provider.
func (c *Counting) Size(ctx context.Context, key string) (int64, error) {
	return c.inner.Size(ctx, key)
}

// Requests returns the total read-path request count.
func (c *Counting) Requests() int64 {
	return atomic.LoadInt64(&c.Gets) + atomic.LoadInt64(&c.RangeGets)
}

// Flaky injects failures into a provider for failure-injection tests: every
// Nth read-path operation returns err.
type Flaky struct {
	inner Provider
	every int64
	err   error

	mu    sync.Mutex
	count int64
}

// NewFlaky returns a provider that fails every n-th read with err.
func NewFlaky(inner Provider, n int64, err error) *Flaky {
	return &Flaky{inner: inner, every: n, err: err}
}

func (f *Flaky) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.every > 0 && f.count%f.every == 0 {
		return f.err
	}
	return nil
}

// Get implements Provider.
func (f *Flaky) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

// GetRange implements Provider.
func (f *Flaky) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.GetRange(ctx, key, offset, length)
}

// Put implements Provider.
func (f *Flaky) Put(ctx context.Context, key string, data []byte) error {
	return f.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (f *Flaky) Delete(ctx context.Context, key string) error { return f.inner.Delete(ctx, key) }

// Exists implements Provider.
func (f *Flaky) Exists(ctx context.Context, key string) (bool, error) {
	return f.inner.Exists(ctx, key)
}

// List implements Provider.
func (f *Flaky) List(ctx context.Context, prefix string) ([]string, error) {
	return f.inner.List(ctx, prefix)
}

// Size implements Provider.
func (f *Flaky) Size(ctx context.Context, key string) (int64, error) {
	return f.inner.Size(ctx, key)
}
