package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingProvider wraps Memory and holds every Get until released, so tests
// can pile up concurrent misses on the same key deterministically.
type blockingProvider struct {
	Provider
	release chan struct{}
	gets    atomic.Int64
}

func newBlockingProvider() *blockingProvider {
	return &blockingProvider{Provider: NewMemory(), release: make(chan struct{})}
}

func (b *blockingProvider) Get(ctx context.Context, key string) ([]byte, error) {
	b.gets.Add(1)
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.Provider.Get(ctx, key)
}

func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	ctx := context.Background()
	var f Flight[int]
	var calls atomic.Int64
	gate := make(chan struct{})

	const waiters = 32
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do(ctx, "k", func() (int, error) {
				calls.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach the flight before releasing the leader.
	for f.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != waiters-1 {
		t.Fatalf("shared callers = %d, want %d", got, waiters-1)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if f.Inflight() != 0 {
		t.Fatalf("inflight = %d after completion", f.Inflight())
	}
}

func TestFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	ctx := context.Background()
	var f Flight[string]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, _, err := f.Do(ctx, key, func() (string, error) {
				calls.Add(1)
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("Do(%s) = %q, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fn ran %d times, want 8 (one per key)", got)
	}
}

func TestFlightErrorSharedByFollowers(t *testing.T) {
	ctx := context.Background()
	var f Flight[int]
	boom := errors.New("origin down")
	gate := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.Do(ctx, "k", func() (int, error) {
				<-gate
				return 0, boom
			})
		}(i)
	}
	for f.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d err = %v, want origin failure", i, err)
		}
	}
}

func TestFlightFollowerContextCancellation(t *testing.T) {
	var f Flight[int]
	gate := make(chan struct{})
	leaderDone := make(chan struct{})

	go func() {
		defer close(leaderDone)
		v, _, err := f.Do(context.Background(), "k", func() (int, error) {
			<-gate
			return 7, nil
		})
		if v != 7 || err != nil {
			t.Errorf("leader got %d, %v", v, err)
		}
	}()
	for f.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := f.Do(ctx, "k", func() (int, error) { return 0, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: shared=%v err=%v", shared, err)
	}

	close(gate) // leader still completes normally
	<-leaderDone
}

// TestShardedLRUTable exercises shard counts from 1 to 64 with the same
// workload and asserts the Provider contract behaviors hold for each.
func TestShardedLRUTable(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 16, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			origin := NewCounting(NewMemory())
			cache := NewShardedLRU(origin, 1<<20, shards)
			if cache.NumShards() != shards {
				t.Fatalf("NumShards = %d", cache.NumShards())
			}

			const keys = 100
			for i := 0; i < keys; i++ {
				if err := cache.Put(ctx, fmt.Sprintf("k%03d", i), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			origin.Reset()
			for i := 0; i < keys; i++ {
				got, err := cache.Get(ctx, fmt.Sprintf("k%03d", i))
				if err != nil || len(got) != 1 || got[0] != byte(i) {
					t.Fatalf("Get k%03d = %v, %v", i, got, err)
				}
			}
			if gets := origin.Snapshot().Gets; gets != 0 {
				t.Fatalf("origin Gets = %d, want 0 (all resident)", gets)
			}

			stats := cache.Stats()
			if len(stats.Shards) != shards {
				t.Fatalf("per-shard stats = %d entries, want %d", len(stats.Shards), shards)
			}
			if stats.Hits != keys {
				t.Fatalf("hits = %d, want %d", stats.Hits, keys)
			}
			if stats.UsedBytes != keys {
				t.Fatalf("used = %d, want %d", stats.UsedBytes, keys)
			}
			// Aggregates equal the sum of the per-shard breakdown.
			var hits, misses, used int64
			entries := 0
			for _, ss := range stats.Shards {
				hits += ss.Hits
				misses += ss.Misses
				used += ss.UsedBytes
				entries += ss.Entries
			}
			if hits != stats.Hits || misses != stats.Misses || used != stats.UsedBytes {
				t.Fatalf("aggregate %d/%d/%d != shard sums %d/%d/%d",
					stats.Hits, stats.Misses, stats.UsedBytes, hits, misses, used)
			}
			if entries != keys {
				t.Fatalf("entries = %d, want %d", entries, keys)
			}

			// Deletes evict from the owning shard.
			if err := cache.Delete(ctx, "k000"); err != nil {
				t.Fatal(err)
			}
			if ok, _ := cache.Exists(ctx, "k000"); ok {
				t.Fatal("k000 survived delete")
			}
		})
	}
}

// TestFlightLeaderPanicDoesNotPoisonKey: a panicking leader must release
// the key (followers get an error, not a permanent hang) and leave the
// flight reusable.
func TestFlightLeaderPanicDoesNotPoisonKey(t *testing.T) {
	ctx := context.Background()
	var f Flight[int]
	gate := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do(ctx, "k", func() (int, error) {
			<-gate
			panic("provider bug")
		})
	}()
	for f.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerErr := make(chan error, 1)
	go func() {
		_, _, err := f.Do(ctx, "k", func() (int, error) { return 0, nil })
		followerErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(gate)
	<-leaderDone

	select {
	case err := <-followerErr:
		if err != nil && !errors.Is(err, errFlightAbandoned) {
			t.Fatalf("follower err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower deadlocked on poisoned key")
	}
	// The key is released: a fresh call runs fn normally.
	v, shared, err := f.Do(ctx, "k", func() (int, error) { return 9, nil })
	if v != 9 || shared || err != nil {
		t.Fatalf("post-panic Do = %d, %v, %v", v, shared, err)
	}
}

// TestNewLRUShardCountScalesToCapacity: the automatic shard count must
// never shrink per-shard capacity below full chunk size — a 64MB cache has
// to hold the paper's 8MB chunks.
func TestNewLRUShardCountScalesToCapacity(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		capacity   int64
		wantShards int
	}{
		{1 << 30, 16}, // 1GB: full sharding
		{64 << 20, 4}, // 64MB: 4 shards of 16MB
		{1 << 20, 1},  // 1MB: single shard
		{0, 1},
	}
	for _, c := range cases {
		cache := NewLRU(NewMemory(), c.capacity)
		if got := cache.NumShards(); got != c.wantShards {
			t.Errorf("NewLRU(%d).NumShards() = %d, want %d", c.capacity, got, c.wantShards)
		}
	}
	// The regression: an 8MB chunk must be cacheable in a 64MB cache.
	origin := NewCounting(NewMemory())
	cache := NewLRU(origin, 64<<20)
	if err := cache.Put(ctx, "chunk", make([]byte, 8<<20)); err != nil {
		t.Fatal(err)
	}
	if used := cache.Stats().UsedBytes; used != 8<<20 {
		t.Fatalf("8MB chunk not resident in 64MB cache: used = %d", used)
	}
	if _, err := cache.Get(ctx, "chunk"); err != nil {
		t.Fatal(err)
	}
	if gets := origin.Snapshot().Gets; gets != 0 {
		t.Fatalf("origin Gets = %d, want 0 (chunk resident)", gets)
	}
}

// TestLRUFollowerSurvivesLeaderCancellation: a follower with a live context
// must not inherit the leader's context.Canceled — it retries and fetches
// with its own context.
func TestLRUFollowerSurvivesLeaderCancellation(t *testing.T) {
	blocking := newBlockingProvider()
	if err := blocking.Provider.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cache := NewLRU(blocking, 1<<20)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := cache.Get(leaderCtx, "k")
		leaderErr <- err
	}()
	for blocking.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan struct{})
	var followerData []byte
	var followerFetchErr error
	go func() {
		defer close(followerDone)
		followerData, followerFetchErr = cache.Get(context.Background(), "k")
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	// The follower retries, becomes the new leader, and blocks in the
	// origin; release it.
	for blocking.gets.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(blocking.release)
	<-followerDone
	if followerFetchErr != nil || string(followerData) != "v" {
		t.Fatalf("follower = %q, %v; want value despite cancelled leader", followerData, followerFetchErr)
	}
	// The retry was a real fetch, not a shared one: no coalesced credit.
	if c := cache.Stats().Coalesced; c != 0 {
		t.Fatalf("coalesced = %d, want 0 (follower refetched)", c)
	}
}

// TestShardedLRUEvictionBounded asserts every shard honors its byte budget
// under a churning workload.
func TestShardedLRUEvictionBounded(t *testing.T) {
	ctx := context.Background()
	const capacity, shards = 4096, 8
	cache := NewShardedLRU(NewMemory(), capacity, shards)
	for i := 0; i < 500; i++ {
		if err := cache.Put(ctx, fmt.Sprintf("obj%d", i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	stats := cache.Stats()
	if stats.UsedBytes > capacity {
		t.Fatalf("resident %d exceeds capacity %d", stats.UsedBytes, capacity)
	}
	per := int64(capacity / shards)
	for i, ss := range stats.Shards {
		if ss.UsedBytes > per {
			t.Fatalf("shard %d resident %d exceeds shard budget %d", i, ss.UsedBytes, per)
		}
	}
}

// TestLRUCoalescesConcurrentMisses is the tentpole behavior: N readers miss
// on the same object simultaneously and the origin sees exactly one Get.
func TestLRUCoalescesConcurrentMisses(t *testing.T) {
	ctx := context.Background()
	blocking := newBlockingProvider()
	if err := blocking.Provider.Put(ctx, "hot", []byte("chunk-bytes")); err != nil {
		t.Fatal(err)
	}
	cache := NewLRU(blocking, 1<<20)

	const readers = 32
	var wg sync.WaitGroup
	results := make([][]byte, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cache.Get(ctx, "hot")
		}(i)
	}
	// Wait for the leader to reach the (blocked) origin, give followers time
	// to pile onto the flight, then release.
	for blocking.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(blocking.release)
	wg.Wait()

	if got := blocking.gets.Load(); got != 1 {
		t.Fatalf("origin Gets = %d, want 1 (coalesced)", got)
	}
	for i := range results {
		if errs[i] != nil || string(results[i]) != "chunk-bytes" {
			t.Fatalf("reader %d: %q, %v", i, results[i], errs[i])
		}
	}
	stats := cache.Stats()
	if stats.Coalesced == 0 {
		t.Fatalf("coalesced = 0, want > 0 (%d readers shared one fetch)", readers)
	}
	if stats.Coalesced > readers-1 {
		t.Fatalf("coalesced = %d, want <= %d", stats.Coalesced, readers-1)
	}
}

// TestShardedLRUStress hammers overlapping keys from 32 goroutines and
// asserts (a) the origin saw at most one Get per key (coalescing + caching),
// (b) returned data is correct, and (c) the stats ledger is consistent.
func TestShardedLRUStress(t *testing.T) {
	ctx := context.Background()
	origin := NewCounting(NewMemory())
	const keys = 16
	want := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("chunk/%02d", i)
		v := fmt.Sprintf("payload-%02d", i)
		want[k] = v
		if err := origin.Put(ctx, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	origin.Reset()
	cache := NewShardedLRU(origin, 1<<20, 8)

	const goroutines, rounds = 32, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("chunk/%02d", (g+r)%keys)
				got, err := cache.Get(ctx, k)
				if err != nil {
					t.Errorf("Get(%s): %v", k, err)
					return
				}
				if string(got) != want[k] {
					t.Errorf("Get(%s) = %q, want %q", k, got, want[k])
					return
				}
				// Mutating the returned slice must not poison the cache.
				if len(got) > 0 {
					got[0] = 'X'
				}
			}
		}(g)
	}
	wg.Wait()

	originGets := origin.Snapshot().Gets
	if originGets > keys {
		t.Fatalf("origin Gets = %d for %d keys; misses not coalesced/cached", originGets, keys)
	}
	stats := cache.Stats()
	total := goroutines * rounds
	// Every lookup is a hit or a miss; hits+misses covers all Gets.
	if stats.Hits+stats.Misses != int64(total) {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d lookups",
			stats.Hits, stats.Misses, stats.Hits+stats.Misses, total)
	}
	// Misses that did not reach the origin must be accounted as coalesced.
	if stats.Misses-stats.Coalesced != originGets {
		t.Fatalf("misses(%d) - coalesced(%d) = %d, want origin Gets %d",
			stats.Misses, stats.Coalesced, stats.Misses-stats.Coalesced, originGets)
	}
	var wantUsed int64
	for _, v := range want {
		wantUsed += int64(len(v))
	}
	if stats.UsedBytes != wantUsed {
		t.Fatalf("used = %d, want %d", stats.UsedBytes, wantUsed)
	}
}
