package viz

import (
	"io"
	"net/http"
	"testing"
)

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
