// Package viz implements the visualization engine of §4.3: an htype-aware
// layout planner that decides how each tensor should be displayed (primary
// media first, annotations overlaid), a server-side renderer compositing
// bounding boxes and masks onto images, and an HTTP API that streams
// sample data directly from the dataset's storage provider — no separate
// managed service, matching the paper's architecture (the WebGL rasterizer
// is replaced by server-side PNG encoding).
package viz

import (
	"bytes"
	"context"
	"fmt"
	"image"
	"image/color"
	"image/draw"
	"image/png"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Role classifies how a tensor participates in the display.
type Role string

// Display roles (§4.3: "Primary tensors, such as image, video and audio
// are displayed first, while secondary data and annotations ... are
// overlayed").
const (
	RolePrimary Role = "primary"
	RoleOverlay Role = "overlay"
	RoleMeta    Role = "meta"
)

// LayoutItem is one tensor's display assignment.
type LayoutItem struct {
	Tensor   string `json:"tensor"`
	Htype    string `json:"htype"`
	Role     Role   `json:"role"`
	Sequence bool   `json:"sequence,omitempty"`
}

// Layout plans the display of a dataset from its htypes.
func Layout(ds *core.Dataset) []LayoutItem {
	var out []LayoutItem
	for _, name := range ds.Tensors() {
		t := ds.Tensor(name)
		spec := t.Htype()
		item := LayoutItem{Tensor: name, Htype: t.Meta().Htype, Sequence: spec.Sequence}
		switch spec.Base.Name {
		case "image", "video", "audio":
			item.Role = RolePrimary
		case "bbox", "binary_mask", "segment_mask":
			item.Role = RoleOverlay
		case "class_label", "text":
			item.Role = RoleOverlay
		default:
			item.Role = RoleMeta
		}
		out = append(out, item)
	}
	// Primary tensors first, preserving creation order within roles.
	rank := func(r Role) int {
		switch r {
		case RolePrimary:
			return 0
		case RoleOverlay:
			return 1
		}
		return 2
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rank(out[j].Role) < rank(out[j-1].Role); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RenderOptions configures RenderSample.
type RenderOptions struct {
	// BoxColor tints bounding boxes (default red).
	BoxColor color.RGBA
	// MaskColor tints binary masks (default green, alpha blended).
	MaskColor color.RGBA
}

func (o RenderOptions) withDefaults() RenderOptions {
	zero := color.RGBA{}
	if o.BoxColor == zero {
		o.BoxColor = color.RGBA{R: 255, A: 255}
	}
	if o.MaskColor == zero {
		o.MaskColor = color.RGBA{G: 200, A: 120}
	}
	return o
}

// RenderSample composites row idx: the first primary image tensor as the
// base, every bbox tensor drawn as rectangles, every binary_mask tensor
// alpha-blended (§4.3: "compare predictions to ground truth" overlays). It
// returns a PNG.
func RenderSample(ctx context.Context, ds *core.Dataset, idx uint64, opts RenderOptions) ([]byte, error) {
	opts = opts.withDefaults()
	layout := Layout(ds)
	var base *image.RGBA
	for _, item := range layout {
		if item.Role != RolePrimary || item.Sequence {
			continue
		}
		t := ds.Tensor(item.Tensor)
		if t.Htype().Base.Name != "image" || t.Htype().Link {
			continue
		}
		if idx >= t.Len() {
			continue
		}
		arr, err := t.At(ctx, idx)
		if err != nil {
			return nil, err
		}
		base = toRGBA(arr)
		break
	}
	if base == nil {
		return nil, fmt.Errorf("viz: no renderable image tensor at row %d", idx)
	}
	for _, item := range layout {
		if item.Role != RoleOverlay {
			continue
		}
		t := ds.Tensor(item.Tensor)
		if idx >= t.Len() {
			continue
		}
		switch t.Htype().Base.Name {
		case "bbox":
			arr, err := t.At(ctx, idx)
			if err != nil {
				return nil, err
			}
			drawBoxes(base, arr, opts.BoxColor)
		case "binary_mask":
			arr, err := t.At(ctx, idx)
			if err != nil {
				return nil, err
			}
			blendMask(base, arr, opts.MaskColor)
		}
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, base); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// toRGBA converts an HW or HWC uint8 array into an RGBA image.
func toRGBA(arr *tensor.NDArray) *image.RGBA {
	s := arr.Shape()
	h, w, c := s[0], 1, 1
	if len(s) >= 2 {
		w = s[1]
	}
	if len(s) >= 3 {
		c = s[2]
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	pix := arr.Bytes()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b byte
			switch c {
			case 1:
				v := pix[y*w+x]
				r, g, b = v, v, v
			default:
				base := (y*w + x) * c
				r, g, b = pix[base], pix[base+1%c], pix[base+2%c]
				if c >= 3 {
					g, b = pix[base+1], pix[base+2]
				}
			}
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img
}

// drawBoxes strokes [x, y, w, h] rectangles.
func drawBoxes(img *image.RGBA, boxes *tensor.NDArray, c color.RGBA) {
	rows := boxes.Float64s()
	n := len(rows) / 4
	b := img.Bounds()
	for k := 0; k < n; k++ {
		x0, y0 := int(rows[k*4]), int(rows[k*4+1])
		x1, y1 := x0+int(rows[k*4+2]), y0+int(rows[k*4+3])
		for x := x0; x <= x1; x++ {
			setIfIn(img, b, x, y0, c)
			setIfIn(img, b, x, y1, c)
		}
		for y := y0; y <= y1; y++ {
			setIfIn(img, b, x0, y, c)
			setIfIn(img, b, x1, y, c)
		}
	}
}

func setIfIn(img *image.RGBA, b image.Rectangle, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(b) {
		img.SetRGBA(x, y, c)
	}
}

// blendMask alpha-blends non-zero mask pixels.
func blendMask(img *image.RGBA, mask *tensor.NDArray, c color.RGBA) {
	s := mask.Shape()
	if len(s) < 2 {
		return
	}
	h, w := s[0], s[1]
	bounds := img.Bounds()
	src := image.NewUniform(c)
	for y := 0; y < h && y < bounds.Dy(); y++ {
		for x := 0; x < w && x < bounds.Dx(); x++ {
			v, err := mask.At(y, x)
			if err != nil || v == 0 {
				continue
			}
			draw.Draw(img, image.Rect(x, y, x+1, y+1), src, image.Point{}, draw.Over)
		}
	}
}

// Downsample produces a preview image array at 1/factor scale (nearest
// neighbor), the content of the hidden preview tensors §3.4 mentions.
func Downsample(arr *tensor.NDArray, factor int) (*tensor.NDArray, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("viz: invalid downsample factor %d", factor)
	}
	s := arr.Shape()
	if len(s) < 2 {
		return nil, fmt.Errorf("viz: downsample needs a 2-d or 3-d image, got %v", s)
	}
	h, w := s[0], s[1]
	c := 1
	if len(s) == 3 {
		c = s[2]
	}
	oh, ow := (h+factor-1)/factor, (w+factor-1)/factor
	outShape := []int{oh, ow}
	if len(s) == 3 {
		outShape = append(outShape, c)
	}
	out := tensor.MustNew(arr.Dtype(), outShape...)
	pix := arr.Bytes()
	dst := out.Bytes()
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			sy, sx := y*factor, x*factor
			if sy >= h {
				sy = h - 1
			}
			if sx >= w {
				sx = w - 1
			}
			copy(dst[(y*ow+x)*c:(y*ow+x+1)*c], pix[(sy*w+sx)*c:(sy*w+sx+1)*c])
		}
	}
	return out, nil
}

// CreatePreviews materializes a hidden downsampled preview tensor for the
// named image tensor (§3.4: "hidden tensors can be used to maintain
// down-sampled versions of images").
func CreatePreviews(ctx context.Context, ds *core.Dataset, tensorName string, factor int) (*core.Tensor, error) {
	src := ds.Tensor(tensorName)
	if src == nil {
		return nil, fmt.Errorf("viz: unknown tensor %q", tensorName)
	}
	preview, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name:              "_preview/" + tensorName,
		Htype:             "image",
		SampleCompression: "jpeg",
		Hidden:            true,
	})
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < src.Len(); i++ {
		arr, err := src.At(ctx, i)
		if err != nil {
			return nil, err
		}
		small, err := Downsample(arr, factor)
		if err != nil {
			return nil, err
		}
		if err := preview.Append(ctx, small); err != nil {
			return nil, err
		}
	}
	return preview, nil
}
