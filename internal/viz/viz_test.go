package viz

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// vizDataset builds a dataset with image + bbox + mask + label tensors.
func vizDataset(t *testing.T) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "viz")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Htype: "image"})
	box, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "boxes", Htype: "bbox"})
	mask, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "masks", Htype: "binary_mask", Dtype: tensor.UInt8})
	lbl, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label"})
	cap_, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "captions", Htype: "text"})

	for i := 0; i < 3; i++ {
		pic := tensor.MustNew(tensor.UInt8, 32, 32, 3)
		for p := 0; p < pic.Len(); p++ {
			pic.Bytes()[p] = byte(40 + i) // near-constant: JPEG-stable
		}
		if err := img.Append(ctx, pic); err != nil {
			t.Fatal(err)
		}
		b, _ := tensor.FromFloat64s(tensor.Float32, []int{1, 4}, []float64{4, 4, 10, 10})
		box.Append(ctx, b)
		m := tensor.MustNew(tensor.UInt8, 32, 32)
		for y := 20; y < 28; y++ {
			for x := 20; x < 28; x++ {
				m.SetAt(1, y, x)
			}
		}
		mask.Append(ctx, m)
		lbl.Append(ctx, tensor.Scalar(tensor.Int32, float64(i)))
		cap_.Append(ctx, tensor.FromString("sample caption"))
	}
	return ds
}

func TestLayoutRolesAndOrder(t *testing.T) {
	ds := vizDataset(t)
	layout := Layout(ds)
	if len(layout) != 5 {
		t.Fatalf("layout items = %d", len(layout))
	}
	if layout[0].Tensor != "images" || layout[0].Role != RolePrimary {
		t.Fatalf("first item = %+v, want primary images", layout[0])
	}
	roles := map[string]Role{}
	for _, item := range layout {
		roles[item.Tensor] = item.Role
	}
	for _, overlay := range []string{"boxes", "masks", "labels", "captions"} {
		if roles[overlay] != RoleOverlay {
			t.Fatalf("%s role = %v, want overlay", overlay, roles[overlay])
		}
	}
}

func TestRenderSampleComposites(t *testing.T) {
	ds := vizDataset(t)
	out, err := RenderSample(context.Background(), ds, 0, RenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 32 || b.Dy() != 32 {
		t.Fatalf("rendered size = %v", b)
	}
	// Box outline pixel: pure red at (4,4).
	r, g, _, _ := img.At(4, 4).RGBA()
	if r>>8 != 255 || g>>8 == 255 {
		t.Fatalf("box pixel = %v", img.At(4, 4))
	}
	// Mask region tinted green-ish at (24,24) vs untinted at (1,30).
	_, gm, _, _ := img.At(24, 24).RGBA()
	_, gu, _, _ := img.At(30, 1).RGBA()
	if gm <= gu {
		t.Fatalf("mask not blended: g(masked)=%d g(unmasked)=%d", gm>>8, gu>>8)
	}
}

func TestRenderNoImageErrors(t *testing.T) {
	ctx := context.Background()
	ds, _ := core.Create(ctx, storage.NewMemory(), "noimg")
	lbl, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label"})
	lbl.Append(ctx, tensor.Scalar(tensor.Int32, 1))
	if _, err := RenderSample(ctx, ds, 0, RenderOptions{}); err == nil {
		t.Fatal("render without an image tensor should error")
	}
}

func TestDownsample(t *testing.T) {
	src := tensor.MustNew(tensor.UInt8, 8, 8, 3)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	small, err := Downsample(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := small.Shape(); s[0] != 4 || s[1] != 4 || s[2] != 3 {
		t.Fatalf("downsampled shape = %v", s)
	}
	// Nearest neighbor: (0,0) of output == (0,0) of input.
	v0, _ := small.At(0, 0, 0)
	w0, _ := src.At(0, 0, 0)
	if v0 != w0 {
		t.Fatal("nearest-neighbor sample mismatch")
	}
	if _, err := Downsample(src, 0); err == nil {
		t.Fatal("zero factor should error")
	}
}

func TestCreatePreviews(t *testing.T) {
	ctx := context.Background()
	ds := vizDataset(t)
	prev, err := CreatePreviews(ctx, ds, "images", 4)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Len() != 3 {
		t.Fatalf("previews = %d", prev.Len())
	}
	arr, err := prev.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Shape()[0] != 8 {
		t.Fatalf("preview shape = %v", arr.Shape())
	}
	// Hidden: not listed.
	for _, name := range ds.Tensors() {
		if name == "_preview/images" {
			t.Fatal("preview tensor must be hidden")
		}
	}
	if _, err := CreatePreviews(ctx, ds, "nosuch", 2); err == nil {
		t.Fatal("unknown tensor should error")
	}
}

func TestServerEndpoints(t *testing.T) {
	ds := vizDataset(t)
	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()

	// /info
	resp := get(t, srv.URL+"/info")
	var info struct {
		Name    string `json:"name"`
		NumRows uint64 `json:"num_rows"`
		Tensors []struct {
			Name  string `json:"name"`
			Htype string `json:"htype"`
		} `json:"tensors"`
	}
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "viz" || info.NumRows != 3 || len(info.Tensors) != 5 {
		t.Fatalf("info = %+v", info)
	}

	// /layout
	resp = get(t, srv.URL+"/layout")
	var layout []LayoutItem
	if err := json.Unmarshal(resp, &layout); err != nil {
		t.Fatal(err)
	}
	if layout[0].Role != RolePrimary {
		t.Fatalf("layout[0] = %+v", layout[0])
	}

	// /sample image: JPEG bytes.
	resp = get(t, srv.URL+"/sample?tensor=images&row=1")
	if len(resp) < 4 || resp[0] != 0xFF || resp[1] != 0xD8 {
		t.Fatalf("image sample is not JPEG (starts %x)", resp[:2])
	}

	// /sample text: JSON with text field.
	resp = get(t, srv.URL+"/sample?tensor=captions&row=0")
	var sample map[string]any
	if err := json.Unmarshal(resp, &sample); err != nil {
		t.Fatal(err)
	}
	if sample["text"] != "sample caption" {
		t.Fatalf("caption sample = %v", sample)
	}

	// /render: PNG with overlays.
	resp = get(t, srv.URL+"/render?row=0")
	if _, err := png.Decode(bytes.NewReader(resp)); err != nil {
		t.Fatalf("render is not png: %v", err)
	}

	// /query integrates TQL.
	resp = get(t, srv.URL+"/query?q=SELECT+*+FROM+viz+WHERE+labels+%3D%3D+1")
	var qr struct {
		Rows []uint64 `json:"rows"`
	}
	if err := json.Unmarshal(resp, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0] != 1 {
		t.Fatalf("query rows = %v", qr.Rows)
	}
}

func TestServerErrorPaths(t *testing.T) {
	ds := vizDataset(t)
	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()
	for _, path := range []string{
		"/sample?tensor=nosuch&row=0",
		"/sample?tensor=images&row=99",
		"/render?row=abc",
		"/query?q=",
		"/query?q=SELECT+nosuch+FROM+x",
	} {
		code := getStatus(t, srv.URL+path)
		if code < 400 {
			t.Errorf("%s: status = %d, want error", path, code)
		}
	}
}

func TestServerRejectsNonGET(t *testing.T) {
	ds := vizDataset(t)
	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/info", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /info status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("Allow header = %q, want \"GET, HEAD\"", allow)
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := httpGet(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerSequenceAndVideoEndpoints(t *testing.T) {
	ctx := context.Background()
	ds, _ := core.Create(ctx, storage.NewMemory(), "media")
	seq, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "frames", Htype: "sequence[generic]", Dtype: tensor.Int32})
	seq.AppendSequence(ctx, []*tensor.NDArray{
		tensor.Scalar(tensor.Int32, 1), tensor.Scalar(tensor.Int32, 2),
	})
	vid, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "clip", Htype: "video"})
	vid.Append(ctx, tensor.MustNew(tensor.UInt8, 4, 2, 2, 3))
	ds.Flush(ctx)

	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()

	// Sequence length + per-item access.
	resp := get(t, srv.URL+"/sample?tensor=frames&row=0")
	var seqInfo struct {
		N int `json:"sequence_length"`
	}
	if err := json.Unmarshal(resp, &seqInfo); err != nil || seqInfo.N != 2 {
		t.Fatalf("sequence info = %s, %v", resp, err)
	}
	resp = get(t, srv.URL+"/sample?tensor=frames&row=0&item=1")
	var item struct {
		Dtype string `json:"dtype"`
	}
	if err := json.Unmarshal(resp, &item); err != nil || item.Dtype != "int32" {
		t.Fatalf("item = %s, %v", resp, err)
	}
	if code := getStatus(t, srv.URL+"/sample?tensor=frames&row=0&item=9"); code < 400 {
		t.Fatal("item out of range should error")
	}

	// Video frame access.
	resp = get(t, srv.URL+"/sample?tensor=clip&row=0&frame=2")
	var frame struct {
		Shape []int `json:"shape"`
	}
	if err := json.Unmarshal(resp, &frame); err != nil {
		t.Fatal(err)
	}
	if len(frame.Shape) != 4 || frame.Shape[0] != 1 {
		t.Fatalf("frame shape = %v", frame.Shape)
	}
	if code := getStatus(t, srv.URL+"/sample?tensor=clip&row=0&frame=99"); code < 400 {
		t.Fatal("frame out of range should error")
	}
}
