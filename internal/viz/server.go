package viz

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/tql"
)

// Server exposes a dataset over HTTP for in-browser inspection (§4.3 /
// §5.4: inspecting datasets of any size from the browser with no download).
// All handlers stream straight from the dataset's storage provider.
type Server struct {
	ds  *core.Dataset
	mux *http.ServeMux
}

// NewServer builds the HTTP API for one dataset.
//
// Routes are registered as plain paths with an explicit method guard rather
// than Go 1.22 "GET /path" patterns: those patterns silently degrade to
// literal path matches (404ing every route) when the build's httpmuxgo121
// GODEBUG default flips, which is exactly the failure mode the seed shipped
// with.
func NewServer(ds *core.Dataset) *Server {
	s := &Server{ds: ds, mux: http.NewServeMux()}
	s.mux.HandleFunc("/info", getOnly(s.handleInfo))
	s.mux.HandleFunc("/layout", getOnly(s.handleLayout))
	s.mux.HandleFunc("/sample", getOnly(s.handleSample))
	s.mux.HandleFunc("/render", getOnly(s.handleRender))
	s.mux.HandleFunc("/query", getOnly(s.handleQuery))
	return s
}

// getOnly rejects non-GET methods before the handler runs.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	type tensorInfo struct {
		Name   string `json:"name"`
		Htype  string `json:"htype"`
		Dtype  string `json:"dtype"`
		Length uint64 `json:"length"`
		Chunks int    `json:"chunks"`
	}
	var tensors []tensorInfo
	for _, name := range s.ds.Tensors() {
		t := s.ds.Tensor(name)
		m := t.Meta()
		tensors = append(tensors, tensorInfo{
			Name: name, Htype: m.Htype, Dtype: m.Dtype,
			Length: m.Length, Chunks: t.NumChunks(),
		})
	}
	writeJSON(w, map[string]any{
		"name":     s.ds.Name(),
		"branch":   s.ds.Branch(),
		"version":  s.ds.Version(),
		"num_rows": s.ds.NumRows(),
		"tensors":  tensors,
	})
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Layout(s.ds))
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tensor")
	t := s.ds.Tensor(name)
	if t == nil {
		http.Error(w, fmt.Sprintf("unknown tensor %q", name), http.StatusNotFound)
		return
	}
	row, err := strconv.ParseUint(r.URL.Query().Get("row"), 10, 64)
	if err != nil || row >= t.Len() {
		http.Error(w, "row out of range", http.StatusBadRequest)
		return
	}
	// Sequence rows support per-item access (§4.3: jump to a position of
	// the sequence without fetching the whole row).
	if t.Htype().Sequence {
		if itemStr := r.URL.Query().Get("item"); itemStr != "" {
			item, err := strconv.Atoi(itemStr)
			if err != nil {
				http.Error(w, "bad item", http.StatusBadRequest)
				return
			}
			items, err := t.SequenceAt(r.Context(), int(row))
			if err != nil || item < 0 || item >= len(items) {
				http.Error(w, "item out of range", http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]any{
				"shape": items[item].Shape(),
				"dtype": items[item].Dtype().String(),
			})
			return
		}
		n, err := t.SequenceLen(int(row))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"sequence_length": n})
		return
	}
	// Video tensors serve individual frames via range reads (§3.4: videos
	// are exempt from tiling precisely to keep frame access cheap).
	if t.Htype().Base.Name == "video" {
		if frameStr := r.URL.Query().Get("frame"); frameStr != "" {
			frame, err := strconv.Atoi(frameStr)
			if err != nil {
				http.Error(w, "bad frame", http.StatusBadRequest)
				return
			}
			arr, err := t.Slice(r.Context(), row, []tensor.Range{{Start: frame, Stop: frame + 1}})
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]any{"shape": arr.Shape(), "dtype": arr.Dtype().String()})
			return
		}
	}
	// Media tensors stream their stored (already encoded) bytes without
	// recoding; everything else returns JSON values.
	if t.Meta().SampleCompression == "jpeg" {
		raw, _, err := t.RawAt(r.Context(), row)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "image/jpeg")
		w.Write(raw)
		return
	}
	arr, err := t.At(r.Context(), row)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	payload := map[string]any{"shape": arr.Shape(), "dtype": arr.Dtype().String()}
	if t.Htype().Base.Name == "text" {
		payload["text"] = arr.AsString()
	} else if arr.Len() <= 4096 {
		payload["values"] = arr.Float64s()
	}
	writeJSON(w, payload)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	row, err := strconv.ParseUint(r.URL.Query().Get("row"), 10, 64)
	if err != nil {
		http.Error(w, "bad row", http.StatusBadRequest)
		return
	}
	pngBytes, err := RenderSample(r.Context(), s.ds, row, RenderOptions{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Write(pngBytes)
}

// handleQuery runs a TQL query and returns the selected row indices and
// columns — the §4.4 integration between query results and visualization.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
		return
	}
	v, err := tql.Run(r.Context(), s.ds, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"rows":    v.Indices(),
		"columns": v.ColumnNames(),
		"sparse":  v.IsSparse(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
