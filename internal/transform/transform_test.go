package transform

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

var smallBounds = chunk.Bounds{Min: 64, Target: 128, Max: 256}

func sourceDataset(t *testing.T, n int) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "src")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	for i := 0; i < n; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

func destDataset(t *testing.T, names ...string) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "dst")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := ds.CreateTensor(ctx, core.TensorSpec{Name: n, Dtype: tensor.Float64, Bounds: smallBounds}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestOneToOneTransformPreservesOrder(t *testing.T) {
	ctx := context.Background()
	src := sourceDataset(t, 50)
	dst := destDataset(t, "y")
	p := Compute(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		out.Emit(Sample{"y": tensor.Scalar(tensor.Float64, v*v)})
		return nil
	})
	stats, err := p.Eval(ctx, FromDataset(src), dst, Options{Workers: 4, BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputSamples != 50 || stats.OutputSamples != 50 {
		t.Fatalf("stats = %+v", stats)
	}
	// Order must be deterministic despite 4 workers.
	for i := 0; i < 50; i++ {
		arr, err := dst.Tensor("y").At(ctx, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := arr.Item()
		if v != float64(i*i) {
			t.Fatalf("y[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestOneToManyTransform(t *testing.T) {
	ctx := context.Background()
	src := sourceDataset(t, 10)
	dst := destDataset(t, "y")
	p := Compute(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		// Emit v copies of each sample (0 emits none).
		for k := 0; k < int(v)%3; k++ {
			out.Emit(Sample{"y": tensor.Scalar(tensor.Float64, v)})
		}
		return nil
	})
	stats, err := p.Eval(ctx, FromDataset(src), dst, Options{Workers: 2, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// i%3 copies for i in 0..9: 0+1+2+0+1+2+0+1+2+0 = 9.
	if stats.OutputSamples != 9 {
		t.Fatalf("outputs = %d, want 9", stats.OutputSamples)
	}
	if dst.Tensor("y").Len() != 9 {
		t.Fatalf("dst len = %d", dst.Tensor("y").Len())
	}
}

func TestPipelineStagesCompose(t *testing.T) {
	ctx := context.Background()
	src := sourceDataset(t, 20)
	dst := destDataset(t, "z")
	p := Compute(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		out.Emit(Sample{"x": tensor.Scalar(tensor.Float64, v+1)})
		return nil
	}).Then(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		out.Emit(Sample{"z": tensor.Scalar(tensor.Float64, v*10)})
		return nil
	})
	if _, err := p.Eval(ctx, FromDataset(src), dst, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	arr, _ := dst.Tensor("z").At(ctx, 0)
	v, _ := arr.Item()
	if v != 10 { // (0+1)*10
		t.Fatalf("z[0] = %v", v)
	}
}

func TestIterSourceIngestion(t *testing.T) {
	ctx := context.Background()
	dst := destDataset(t, "v")
	src := IterSource{N: 15, Fn: func(i int) (Sample, error) {
		return Sample{"v": tensor.Scalar(tensor.Float64, float64(i)*2)}, nil
	}}
	p := Compute(func(in Sample, out *Collector) error {
		out.Emit(in)
		return nil
	})
	stats, err := p.Eval(ctx, src, dst, Options{Workers: 4, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutputSamples != 15 {
		t.Fatalf("outputs = %d", stats.OutputSamples)
	}
	arr, _ := dst.Tensor("v").At(ctx, 7)
	v, _ := arr.Item()
	if v != 14 {
		t.Fatalf("v[7] = %v", v)
	}
}

func TestTransformErrorAborts(t *testing.T) {
	ctx := context.Background()
	src := sourceDataset(t, 30)
	dst := destDataset(t, "y")
	boom := errors.New("bad input")
	p := Compute(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		if v == 13 {
			return boom
		}
		out.Emit(Sample{"y": tensor.Scalar(tensor.Float64, v)})
		return nil
	})
	if _, err := p.Eval(ctx, FromDataset(src), dst, Options{Workers: 4, BatchSize: 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want transform failure", err)
	}
}

func TestUnknownOutputTensorErrors(t *testing.T) {
	ctx := context.Background()
	src := sourceDataset(t, 3)
	dst := destDataset(t, "y")
	p := Compute(func(in Sample, out *Collector) error {
		out.Emit(Sample{"nosuch": tensor.Scalar(tensor.Float64, 1)})
		return nil
	})
	if _, err := p.Eval(ctx, FromDataset(src), dst, Options{}); err == nil {
		t.Fatal("unknown output tensor should error")
	}
}

func TestEvalInPlace(t *testing.T) {
	ctx := context.Background()
	ds := sourceDataset(t, 25)
	p := Compute(func(in Sample, out *Collector) error {
		v, _ := in["x"].Item()
		out.Emit(Sample{"x": tensor.Scalar(tensor.Int32, v+100)})
		return nil
	})
	stats, err := p.EvalInPlace(ctx, ds, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutputSamples != 25 {
		t.Fatalf("outputs = %d", stats.OutputSamples)
	}
	arr, _ := ds.Tensor("x").At(ctx, 5)
	v, _ := arr.Item()
	if v != 105 {
		t.Fatalf("x[5] = %v after in-place transform", v)
	}
}

func TestEvalInPlaceRejectsOneToMany(t *testing.T) {
	ctx := context.Background()
	ds := sourceDataset(t, 5)
	p := Compute(func(in Sample, out *Collector) error {
		out.Emit(in)
		out.Emit(in)
		return nil
	})
	if _, err := p.EvalInPlace(ctx, ds, Options{Workers: 2}); err == nil {
		t.Fatal("in-place one-to-many should error")
	}
}
