// Package transform implements the parallel ingestion/transformation
// framework of §4.1.2: user functions that consume one input sample and
// emit zero or more output samples (one-to-one and one-to-many), stacked
// into pipelines, scheduled over a worker pool in chunk-aligned batches so
// workers touch nearby chunks, with outputs committed in input order so the
// produced dataset is deterministic.
//
// Outputs write through the destination's parallel ingestion engine:
// unless the caller configured the dataset otherwise, Eval installs a
// background chunk flush pipeline (core.WriteOptions, one flush lane per
// worker) so the ordered commit loop appends at memory speed while sealed
// chunks upload concurrently; the final Flush drains the pipeline before
// metadata is persisted.
//
// It is the Go analogue of @deeplake.compute-decorated Python functions
// running on a process pool.
package transform

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/view"
)

// Sample is one row: tensor name to value.
type Sample map[string]*tensor.NDArray

// Collector receives the outputs of a transform function; Emit may be
// called any number of times (one-to-many, §4.1.2).
type Collector struct {
	out []Sample
}

// Emit appends one output sample.
func (c *Collector) Emit(s Sample) { c.out = append(c.out, s) }

// Fn is a user transform: read sample_in, emit sample_outs.
type Fn func(in Sample, out *Collector) error

// Pipeline is a stack of transform functions applied in sequence; stage
// outputs fan through later stages.
type Pipeline struct {
	stages []Fn
}

// Compute starts a pipeline from one function (the @deeplake.compute
// analogue).
func Compute(fn Fn) *Pipeline { return &Pipeline{stages: []Fn{fn}} }

// Then appends a stage, returning the pipeline for chaining.
func (p *Pipeline) Then(fn Fn) *Pipeline {
	p.stages = append(p.stages, fn)
	return p
}

// apply runs the full stage stack on one input.
func (p *Pipeline) apply(in Sample) ([]Sample, error) {
	cur := []Sample{in}
	for si, stage := range p.stages {
		var next []Sample
		for _, s := range cur {
			var c Collector
			if err := stage(s, &c); err != nil {
				return nil, fmt.Errorf("transform: stage %d: %w", si, err)
			}
			next = append(next, c.out...)
		}
		cur = next
	}
	return cur, nil
}

// Source yields input samples by index.
type Source interface {
	// Len returns the number of input samples.
	Len() int
	// At loads input sample i.
	At(ctx context.Context, i int) (Sample, error)
}

// DatasetSource adapts a dataset (all visible tensors) as a Source.
type DatasetSource struct {
	View *view.View
}

// FromDataset sources every complete row of a dataset.
func FromDataset(ds *core.Dataset) DatasetSource {
	return DatasetSource{View: view.All(ds)}
}

// FromView sources the rows of a view (e.g. a TQL result).
func FromView(v *view.View) DatasetSource { return DatasetSource{View: v} }

// Len implements Source.
func (s DatasetSource) Len() int { return s.View.Len() }

// At implements Source.
func (s DatasetSource) At(ctx context.Context, i int) (Sample, error) {
	row, err := s.View.Row(ctx, i)
	if err != nil {
		return nil, err
	}
	return Sample(row), nil
}

// IterSource adapts an arbitrary generator (the "arbitrary iterator with
// custom objects" ingestion path of §4.1.2).
type IterSource struct {
	N  int
	Fn func(i int) (Sample, error)
}

// Len implements Source.
func (s IterSource) Len() int { return s.N }

// At implements Source.
func (s IterSource) At(ctx context.Context, i int) (Sample, error) { return s.Fn(i) }

// Options configures Eval.
type Options struct {
	// Workers is the parallel worker count (default GOMAXPROCS).
	Workers int
	// BatchSize groups adjacent input indices per worker so a worker's
	// reads stay within neighboring chunks (default 16).
	BatchSize int
	// FlushWorkers configures the destination dataset's background chunk
	// flush pipeline, so the ordered commit loop never stalls on
	// object-store Puts. 0 defaults to Workers (unless the destination
	// already has write options configured, which are then respected);
	// negative forces the synchronous serial write path.
	FlushWorkers int
	// MaxPendingFlush bounds sealed chunks in flight before appends block
	// for backpressure (default 2*FlushWorkers).
	MaxPendingFlush int
}

// configureWrites applies the flush-pipeline options to the destination,
// leaving an already-identical configuration untouched (repeated Eval
// calls must not pay a drain barrier rebuilding the same pipeline).
func (o Options) configureWrites(dst *core.Dataset) error {
	apply := func(w core.WriteOptions) error {
		if dst.WriteOptionsConfigured() && dst.WriteOptions() == w {
			return nil
		}
		return dst.SetWriteOptions(w)
	}
	switch {
	case o.FlushWorkers < 0:
		return apply(core.WriteOptions{})
	case o.FlushWorkers > 0:
		return apply(core.WriteOptions{FlushWorkers: o.FlushWorkers, MaxPending: o.MaxPendingFlush})
	case !dst.WriteOptionsConfigured():
		// Never-configured destination: default to one flush lane per
		// worker. A dataset explicitly set to serial (SetWriteOptions with
		// the zero value) is respected.
		return dst.SetWriteOptions(core.WriteOptions{FlushWorkers: o.Workers, MaxPending: o.MaxPendingFlush})
	}
	return nil
}

// Stats reports an Eval run.
type Stats struct {
	// InputSamples and OutputSamples count rows consumed and produced.
	InputSamples, OutputSamples int
}

// Eval runs the pipeline over src and appends outputs to dst in input
// order. dst tensors must already exist for every output key.
func (p *Pipeline) Eval(ctx context.Context, src Source, dst *core.Dataset, opts Options) (Stats, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	if err := opts.configureWrites(dst); err != nil {
		return Stats{}, err
	}
	n := src.Len()
	numBatches := (n + opts.BatchSize - 1) / opts.BatchSize

	type batchResult struct {
		idx int
		out []Sample
		err error
	}
	jobs := make(chan int)
	results := make(chan batchResult, opts.Workers)

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range jobs {
				lo := bi * opts.BatchSize
				hi := lo + opts.BatchSize
				if hi > n {
					hi = n
				}
				var outs []Sample
				var err error
				for i := lo; i < hi; i++ {
					var in Sample
					in, err = src.At(ctx, i)
					if err != nil {
						break
					}
					var produced []Sample
					produced, err = p.apply(in)
					if err != nil {
						break
					}
					outs = append(outs, produced...)
				}
				select {
				case results <- batchResult{idx: bi, out: outs, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for bi := 0; bi < numBatches; bi++ {
			select {
			case jobs <- bi:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Commit batches in input order.
	stats := Stats{InputSamples: n}
	pending := map[int]batchResult{}
	next := 0
	for r := range results {
		pending[r.idx] = r
		for {
			br, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if br.err != nil {
				return stats, br.err
			}
			for _, s := range br.out {
				for name, arr := range s {
					t := dst.Tensor(name)
					if t == nil {
						return stats, fmt.Errorf("transform: output tensor %q does not exist in destination", name)
					}
					if err := t.Append(ctx, arr); err != nil {
						return stats, err
					}
				}
				stats.OutputSamples++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if next != numBatches {
		return stats, fmt.Errorf("transform: pipeline stalled at batch %d/%d", next, numBatches)
	}
	return stats, dst.Flush(ctx)
}

// EvalInPlace applies a strictly one-to-one pipeline onto the source
// dataset itself, overwriting each row (§4.1.2: "The transformation can
// also be applied in place").
func (p *Pipeline) EvalInPlace(ctx context.Context, ds *core.Dataset, opts Options) (Stats, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if err := opts.configureWrites(ds); err != nil {
		return Stats{}, err
	}
	src := FromDataset(ds)
	n := src.Len()
	stats := Stats{InputSamples: n}
	type rowResult struct {
		row int
		out Sample
		err error
	}
	jobs := make(chan int)
	results := make(chan rowResult, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				in, err := src.At(ctx, i)
				var out Sample
				if err == nil {
					var produced []Sample
					produced, err = p.apply(in)
					if err == nil && len(produced) != 1 {
						err = fmt.Errorf("transform: in-place pipelines must be one-to-one, got %d outputs", len(produced))
					}
					if err == nil {
						out = produced[0]
					}
				}
				select {
				case results <- rowResult{row: i, out: out, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		if r.err != nil {
			return stats, r.err
		}
		srcRow, err := src.View.SourceRow(r.row)
		if err != nil {
			return stats, err
		}
		for name, arr := range r.out {
			t := ds.Tensor(name)
			if t == nil {
				return stats, fmt.Errorf("transform: output tensor %q does not exist", name)
			}
			if err := t.SetAt(ctx, srcRow, arr); err != nil {
				return stats, err
			}
		}
		stats.OutputSamples++
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, ds.Flush(ctx)
}
