package tensor

import (
	"testing"
)

func TestParseHtypeBase(t *testing.T) {
	for _, name := range []string{"generic", "image", "video", "audio", "class_label", "bbox", "binary_mask", "segment_mask", "text", "embedding", "json", "dicom"} {
		spec, err := ParseHtype(name)
		if err != nil {
			t.Fatalf("ParseHtype(%q): %v", name, err)
		}
		if spec.Base.Name != name || spec.Sequence || spec.Link {
			t.Fatalf("ParseHtype(%q) = %+v", name, spec)
		}
		if spec.String() != name {
			t.Fatalf("round trip = %q", spec.String())
		}
	}
	spec, err := ParseHtype("")
	if err != nil || spec.Base.Name != "generic" {
		t.Fatalf("empty htype should be generic: %+v, %v", spec, err)
	}
}

func TestParseHtypeMeta(t *testing.T) {
	spec, err := ParseHtype("sequence[image]")
	if err != nil || !spec.Sequence || spec.Link || spec.Base.Name != "image" {
		t.Fatalf("sequence[image] = %+v, %v", spec, err)
	}
	if spec.String() != "sequence[image]" {
		t.Fatalf("String = %q", spec.String())
	}

	spec, err = ParseHtype("link[image]")
	if err != nil || spec.Sequence || !spec.Link || spec.Base.Name != "image" {
		t.Fatalf("link[image] = %+v, %v", spec, err)
	}

	spec, err = ParseHtype("sequence[link[image]]")
	if err != nil || !spec.Sequence || !spec.Link {
		t.Fatalf("sequence[link[image]] = %+v, %v", spec, err)
	}
	if spec.String() != "sequence[link[image]]" {
		t.Fatalf("String = %q", spec.String())
	}

	for _, bad := range []string{"sequence[sequence[image]]", "link[link[image]]", "sequence[nope]", "nope", "sequence[image"} {
		if _, err := ParseHtype(bad); err == nil {
			t.Errorf("ParseHtype(%q) should error", bad)
		}
	}
}

func TestImageHtypeValidation(t *testing.T) {
	spec, _ := ParseHtype("image")
	h := spec.Base

	ok := MustNew(UInt8, 4, 4, 3)
	if err := h.Check(ok); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	gray := MustNew(UInt8, 4, 4)
	if err := h.Check(gray); err != nil {
		t.Fatalf("grayscale rejected: %v", err)
	}
	if err := h.Check(MustNew(UInt8, 4, 4, 2)); err == nil {
		t.Fatal("2-channel image should be rejected")
	}
	if err := h.Check(MustNew(Float32, 4, 4, 3)); err == nil {
		t.Fatal("float image should be rejected")
	}
	if err := h.Check(MustNew(UInt8, 4)); err == nil {
		t.Fatal("1-d image should be rejected")
	}
	if err := h.Check(MustNew(UInt8, 1, 4, 4, 3)); err == nil {
		t.Fatal("4-d image should be rejected")
	}
}

func TestBBoxHtypeValidation(t *testing.T) {
	spec, _ := ParseHtype("bbox")
	h := spec.Base
	if err := h.Check(MustNew(Float32, 5, 4)); err != nil {
		t.Fatalf("[N,4] bbox rejected: %v", err)
	}
	if err := h.Check(MustNew(Float32, 4)); err != nil {
		t.Fatalf("[4] bbox rejected: %v", err)
	}
	if err := h.Check(MustNew(Float32, 5, 3)); err == nil {
		t.Fatal("[N,3] bbox should be rejected")
	}
}

func TestClassLabelDefaults(t *testing.T) {
	spec, _ := ParseHtype("class_label")
	h := spec.Base
	if h.DefaultChunkCompression != "lz4" {
		t.Fatalf("class_label chunk compression = %q, want lz4 (paper §5)", h.DefaultChunkCompression)
	}
	if err := h.Check(Scalar(Int32, 3)); err != nil {
		t.Fatalf("scalar label rejected: %v", err)
	}
	if err := h.Check(MustNew(Int32, 2, 2)); err == nil {
		t.Fatal("2-d label should be rejected")
	}
}

func TestImageDefaultsMatchPaper(t *testing.T) {
	spec, _ := ParseHtype("image")
	if spec.Base.DefaultSampleCompression != "jpeg" {
		t.Fatalf("image sample compression = %q, want jpeg (paper §5)", spec.Base.DefaultSampleCompression)
	}
	if spec.Base.DefaultDtype != UInt8 {
		t.Fatalf("image default dtype = %v, want uint8", spec.Base.DefaultDtype)
	}
}

func TestHtypeNamesNonEmpty(t *testing.T) {
	if len(HtypeNames()) < 10 {
		t.Fatalf("expected >= 10 registered htypes, got %v", HtypeNames())
	}
}
