package tensor

import (
	"fmt"
	"strings"
)

// Htype defines expectations on the samples of a tensor (§3.3): dtype,
// dimensionality, and default compressions. Concrete htypes (image, bbox,
// class_label, ...) inherit from the generic htype; meta-htypes wrap a base
// htype to add sequence or link semantics while preserving its validation.
type Htype struct {
	// Name is the registered identifier ("image", "class_label", ...).
	Name string
	// DefaultDtype is assumed when the tensor declares none.
	DefaultDtype Dtype
	// MinNDim/MaxNDim bound per-sample rank (excluding the batch axis).
	// MaxNDim == 0 means unconstrained.
	MinNDim, MaxNDim int
	// AllowedDtypes restricts element types; empty means any.
	AllowedDtypes []Dtype
	// DefaultSampleCompression is the media codec applied per sample
	// ("jpeg" for images); empty means none.
	DefaultSampleCompression string
	// DefaultChunkCompression is the byte codec applied per chunk
	// ("lz4" for class labels); empty means none.
	DefaultChunkCompression string
	// Validate applies extra structural checks beyond rank and dtype.
	Validate func(*NDArray) error
}

// Check validates one sample against the htype contract.
func (h *Htype) Check(a *NDArray) error {
	nd := a.NDim()
	if nd < h.MinNDim {
		return fmt.Errorf("htype %s: sample rank %d below minimum %d", h.Name, nd, h.MinNDim)
	}
	if h.MaxNDim > 0 && nd > h.MaxNDim {
		return fmt.Errorf("htype %s: sample rank %d above maximum %d", h.Name, nd, h.MaxNDim)
	}
	if len(h.AllowedDtypes) > 0 {
		ok := false
		for _, d := range h.AllowedDtypes {
			if a.Dtype() == d {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("htype %s: dtype %s not allowed", h.Name, a.Dtype())
		}
	}
	if h.Validate != nil {
		return h.Validate(a)
	}
	return nil
}

var htypes = map[string]*Htype{}

func registerHtype(h *Htype) {
	if _, dup := htypes[h.Name]; dup {
		panic(fmt.Sprintf("tensor: duplicate htype %q", h.Name))
	}
	htypes[h.Name] = h
}

// HtypeSpec is a parsed htype expression: a base htype plus optional
// sequence[...] and link[...] meta wrappers (§3.3).
type HtypeSpec struct {
	// Base is the underlying htype.
	Base *Htype
	// Sequence marks a sequence[X] tensor whose rows are ordered lists of
	// X samples (e.g. image sequences / video frames).
	Sequence bool
	// Link marks a link[X] tensor whose stored samples are references
	// (URLs) to externally stored data resolved at read time (§4.5).
	Link bool
}

// String reconstructs the htype expression.
func (s HtypeSpec) String() string {
	name := s.Base.Name
	if s.Link {
		name = "link[" + name + "]"
	}
	if s.Sequence {
		name = "sequence[" + name + "]"
	}
	return name
}

// ParseHtype resolves an htype expression such as "image",
// "sequence[image]", "link[image]" or "sequence[link[image]]". The empty
// string resolves to generic.
func ParseHtype(expr string) (HtypeSpec, error) {
	spec := HtypeSpec{}
	name := strings.TrimSpace(expr)
	if name == "" {
		name = "generic"
	}
	for {
		switch {
		case strings.HasPrefix(name, "sequence[") && strings.HasSuffix(name, "]"):
			if spec.Sequence {
				return spec, fmt.Errorf("tensor: nested sequence in %q", expr)
			}
			spec.Sequence = true
			name = name[len("sequence[") : len(name)-1]
		case strings.HasPrefix(name, "link[") && strings.HasSuffix(name, "]"):
			if spec.Link {
				return spec, fmt.Errorf("tensor: nested link in %q", expr)
			}
			spec.Link = true
			name = name[len("link[") : len(name)-1]
		default:
			h, ok := htypes[name]
			if !ok {
				return spec, fmt.Errorf("tensor: unknown htype %q", expr)
			}
			spec.Base = h
			return spec, nil
		}
	}
}

// HtypeNames lists all registered base htypes.
func HtypeNames() []string {
	out := make([]string, 0, len(htypes))
	for name := range htypes {
		out = append(out, name)
	}
	return out
}

func init() {
	registerHtype(&Htype{
		Name: "generic",
	})
	registerHtype(&Htype{
		Name:                     "image",
		DefaultDtype:             UInt8,
		MinNDim:                  2, // HW grayscale
		MaxNDim:                  3, // HWC
		AllowedDtypes:            []Dtype{UInt8, UInt16},
		DefaultSampleCompression: "jpeg",
		Validate: func(a *NDArray) error {
			if a.NDim() == 3 {
				c := a.Shape()[2]
				if c != 1 && c != 3 && c != 4 {
					return fmt.Errorf("image: channel count %d not in {1,3,4}", c)
				}
			}
			return nil
		},
	})
	registerHtype(&Htype{
		Name:          "video",
		DefaultDtype:  UInt8,
		MinNDim:       4, // THWC
		MaxNDim:       4,
		AllowedDtypes: []Dtype{UInt8},
	})
	registerHtype(&Htype{
		Name:          "audio",
		DefaultDtype:  Float32,
		MinNDim:       1, // samples
		MaxNDim:       2, // samples x channels
		AllowedDtypes: []Dtype{Float32, Float64, Int16},
	})
	registerHtype(&Htype{
		Name:                    "class_label",
		DefaultDtype:            Int32,
		MaxNDim:                 1, // scalar or multi-label vector
		AllowedDtypes:           []Dtype{Int32, Int64, UInt8, UInt16, UInt32},
		DefaultChunkCompression: "lz4",
	})
	registerHtype(&Htype{
		Name:          "bbox",
		DefaultDtype:  Float32,
		MinNDim:       1,
		MaxNDim:       2, // [4] or [N,4]
		AllowedDtypes: []Dtype{Float32, Float64, Int32},
		Validate: func(a *NDArray) error {
			s := a.Shape()
			if s[len(s)-1] != 4 {
				return fmt.Errorf("bbox: last dimension must be 4, got %d", s[len(s)-1])
			}
			return nil
		},
	})
	registerHtype(&Htype{
		Name:                    "binary_mask",
		DefaultDtype:            Bool,
		MinNDim:                 2,
		MaxNDim:                 3,
		AllowedDtypes:           []Dtype{Bool, UInt8},
		DefaultChunkCompression: "lz4",
	})
	registerHtype(&Htype{
		Name:                    "segment_mask",
		DefaultDtype:            Int32,
		MinNDim:                 2,
		MaxNDim:                 2,
		AllowedDtypes:           []Dtype{Int32, UInt8, UInt16},
		DefaultChunkCompression: "lz4",
	})
	registerHtype(&Htype{
		Name:                    "text",
		DefaultDtype:            UInt8,
		MinNDim:                 1,
		MaxNDim:                 1,
		AllowedDtypes:           []Dtype{UInt8},
		DefaultChunkCompression: "lz4",
	})
	registerHtype(&Htype{
		Name:          "embedding",
		DefaultDtype:  Float32,
		MinNDim:       1,
		MaxNDim:       1,
		AllowedDtypes: []Dtype{Float32, Float64},
	})
	registerHtype(&Htype{
		Name:         "json",
		DefaultDtype: UInt8,
		MinNDim:      1,
		MaxNDim:      1,
	})
	registerHtype(&Htype{
		Name:         "dicom",
		DefaultDtype: UInt8,
		MinNDim:      1,
		MaxNDim:      3,
	})
}
