package tensor

import (
	"fmt"
	"math"
)

// Numeric kernels backing TQL's array expressions (§4.4: "TQL extends SQL
// with numeric computations on top of multi-dimensional columns"). All
// kernels return new arrays; inputs are never mutated.

// Map applies f elementwise, producing a Float64 array of the same shape.
func (a *NDArray) Map(f func(float64) float64) *NDArray {
	out := MustNew(Float64, a.shape...)
	for i, n := 0, a.Len(); i < n; i++ {
		out.setFlat(i, f(a.getFlat(i)))
	}
	return out
}

// AsType casts to another dtype (with saturation for integers).
func (a *NDArray) AsType(d Dtype) (*NDArray, error) {
	if !d.Valid() {
		return nil, fmt.Errorf("tensor: invalid target dtype")
	}
	out, err := New(d, a.shape...)
	if err != nil {
		return nil, err
	}
	for i, n := 0, a.Len(); i < n; i++ {
		out.setFlat(i, a.getFlat(i))
	}
	return out, nil
}

// binop applies f elementwise over two arrays of identical shape, or
// broadcasts when either operand is a scalar (size-1) array.
func binop(a, b *NDArray, f func(x, y float64) float64) (*NDArray, error) {
	switch {
	case a.Len() == 1 && b.Len() != 1:
		x := a.getFlat(0)
		return b.Map(func(y float64) float64 { return f(x, y) }), nil
	case b.Len() == 1:
		y := b.getFlat(0)
		return a.Map(func(x float64) float64 { return f(x, y) }), nil
	}
	if !sameShape(a.shape, b.shape) {
		return nil, fmt.Errorf("tensor: shape mismatch %v vs %v", a.shape, b.shape)
	}
	out := MustNew(Float64, a.shape...)
	for i, n := 0, a.Len(); i < n; i++ {
		out.setFlat(i, f(a.getFlat(i), b.getFlat(i)))
	}
	return out, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Add returns a + b elementwise (scalar broadcasting allowed).
func (a *NDArray) Add(b *NDArray) (*NDArray, error) {
	return binop(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b elementwise.
func (a *NDArray) Sub(b *NDArray) (*NDArray, error) {
	return binop(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a * b elementwise.
func (a *NDArray) Mul(b *NDArray) (*NDArray, error) {
	return binop(a, b, func(x, y float64) float64 { return x * y })
}

// Div returns a / b elementwise; division by zero yields ±Inf like NumPy.
func (a *NDArray) Div(b *NDArray) (*NDArray, error) {
	return binop(a, b, func(x, y float64) float64 { return x / y })
}

// Sum reduces over all elements.
func (a *NDArray) Sum() float64 {
	var s float64
	for i, n := 0, a.Len(); i < n; i++ {
		s += a.getFlat(i)
	}
	return s
}

// Mean reduces over all elements; the mean of an empty array is NaN.
func (a *NDArray) Mean() float64 {
	n := a.Len()
	if n == 0 {
		return math.NaN()
	}
	return a.Sum() / float64(n)
}

// Min reduces over all elements; Min of an empty array is +Inf.
func (a *NDArray) Min() float64 {
	m := math.Inf(1)
	for i, n := 0, a.Len(); i < n; i++ {
		if v := a.getFlat(i); v < m {
			m = v
		}
	}
	return m
}

// Max reduces over all elements; Max of an empty array is -Inf.
func (a *NDArray) Max() float64 {
	m := math.Inf(-1)
	for i, n := 0, a.Len(); i < n; i++ {
		if v := a.getFlat(i); v > m {
			m = v
		}
	}
	return m
}

// Any reports whether any element is non-zero.
func (a *NDArray) Any() bool {
	for i, n := 0, a.Len(); i < n; i++ {
		if a.getFlat(i) != 0 {
			return true
		}
	}
	return false
}

// All reports whether all elements are non-zero; All of an empty array is
// true, matching NumPy.
func (a *NDArray) All() bool {
	for i, n := 0, a.Len(); i < n; i++ {
		if a.getFlat(i) == 0 {
			return false
		}
	}
	return true
}

// Clip limits all elements to [lo, hi], returning Float64.
func (a *NDArray) Clip(lo, hi float64) *NDArray {
	return a.Map(func(v float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// L2 returns the Euclidean norm over all elements.
func (a *NDArray) L2() float64 {
	var s float64
	for i, n := 0, a.Len(); i < n; i++ {
		v := a.getFlat(i)
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length arrays (flattened),
// used by embedding-similarity queries.
func (a *NDArray) Dot(b *NDArray) (float64, error) {
	if a.Len() != b.Len() {
		return 0, fmt.Errorf("tensor: dot length mismatch %d vs %d", a.Len(), b.Len())
	}
	var s float64
	for i, n := 0, a.Len(); i < n; i++ {
		s += a.getFlat(i) * b.getFlat(i)
	}
	return s, nil
}

// CosineSimilarity returns the cosine of the angle between two flattened
// arrays; zero-norm inputs yield 0.
func (a *NDArray) CosineSimilarity(b *NDArray) (float64, error) {
	d, err := a.Dot(b)
	if err != nil {
		return 0, err
	}
	na, nb := a.L2(), b.L2()
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return d / (na * nb), nil
}

// ReduceMean averages along a single axis, dropping it (NumPy's
// a.mean(axis=k)), which backs TQL's dimension projections.
func (a *NDArray) ReduceMean(axis int) (*NDArray, error) {
	return a.reduce(axis, func(acc, v float64) float64 { return acc + v }, func(acc float64, n int) float64 { return acc / float64(n) })
}

// ReduceSum sums along a single axis, dropping it.
func (a *NDArray) ReduceSum(axis int) (*NDArray, error) {
	return a.reduce(axis, func(acc, v float64) float64 { return acc + v }, func(acc float64, n int) float64 { return acc })
}

// ReduceMax takes the max along a single axis, dropping it.
func (a *NDArray) ReduceMax(axis int) (*NDArray, error) {
	out, err := a.reduceInit(axis, math.Inf(-1), math.Max)
	return out, err
}

// ReduceMin takes the min along a single axis, dropping it.
func (a *NDArray) ReduceMin(axis int) (*NDArray, error) {
	out, err := a.reduceInit(axis, math.Inf(1), math.Min)
	return out, err
}

func (a *NDArray) reduce(axis int, step func(acc, v float64) float64, fin func(acc float64, n int) float64) (*NDArray, error) {
	out, err := a.reduceInit(axis, 0, step)
	if err != nil {
		return nil, err
	}
	if fin != nil {
		n := a.shape[normAxis(axis, len(a.shape))]
		for i := 0; i < out.Len(); i++ {
			out.setFlat(i, fin(out.getFlat(i), n))
		}
	}
	return out, nil
}

func normAxis(axis, ndim int) int {
	if axis < 0 {
		return axis + ndim
	}
	return axis
}

func (a *NDArray) reduceInit(axis int, init float64, step func(acc, v float64) float64) (*NDArray, error) {
	nd := len(a.shape)
	axis = normAxis(axis, nd)
	if axis < 0 || axis >= nd {
		return nil, fmt.Errorf("tensor: axis %d out of range for %d-d array", axis, nd)
	}
	outShape := make([]int, 0, nd-1)
	outShape = append(outShape, a.shape[:axis]...)
	outShape = append(outShape, a.shape[axis+1:]...)
	out, err := New(Float64, outShape...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < out.Len(); i++ {
		out.setFlat(i, init)
	}
	// outer = product of dims before axis, inner = product after.
	outer, inner := 1, 1
	for _, d := range a.shape[:axis] {
		outer *= d
	}
	for _, d := range a.shape[axis+1:] {
		inner *= d
	}
	k := a.shape[axis]
	for o := 0; o < outer; o++ {
		for j := 0; j < k; j++ {
			base := (o*k + j) * inner
			outBase := o * inner
			for in := 0; in < inner; in++ {
				cur := out.getFlat(outBase + in)
				out.setFlat(outBase+in, step(cur, a.getFlat(base+in)))
			}
		}
	}
	return out, nil
}

// stackLayout validates that the arrays share one dtype and shape and
// returns the stacked output shape plus the per-array byte stride.
func stackLayout(arrays []*NDArray) ([]int, int, error) {
	if len(arrays) == 0 {
		return nil, 0, fmt.Errorf("tensor: stack of zero arrays")
	}
	first := arrays[0]
	for _, a := range arrays[1:] {
		if a.dtype != first.dtype || !sameShape(a.shape, first.shape) {
			return nil, 0, fmt.Errorf("tensor: stack mismatch: %v vs %v", first, a)
		}
	}
	outShape := append([]int{len(arrays)}, first.shape...)
	return outShape, first.NumBytes(), nil
}

// Stack concatenates arrays of identical shape and dtype along a new
// leading axis, the collation step of the dataloader (§4.6).
func Stack(arrays []*NDArray) (*NDArray, error) {
	outShape, stride, err := stackLayout(arrays)
	if err != nil {
		return nil, err
	}
	out, err := New(arrays[0].dtype, outShape...)
	if err != nil {
		return nil, err
	}
	for i, a := range arrays {
		copy(out.data[i*stride:(i+1)*stride], a.data)
	}
	return out, nil
}

// StackInto is Stack with the output's backing array supplied by the
// caller: buf must hold exactly len(arrays) x the per-array byte size, and
// the returned array wraps it without copying — the dataloader's collator
// draws buf from a per-pipeline arena so steady-state batch assembly stops
// allocating a fresh backing array per batch. The same validation as Stack
// applies; the caller keeps ownership of buf's lifetime (the batch holds it
// until the consumer drops the batch).
func StackInto(arrays []*NDArray, buf []byte) (*NDArray, error) {
	outShape, stride, err := stackLayout(arrays)
	if err != nil {
		return nil, err
	}
	if want := stride * len(arrays); len(buf) != want {
		return nil, fmt.Errorf("tensor: stack buffer holds %d bytes, want %d", len(buf), want)
	}
	for i, a := range arrays {
		copy(buf[i*stride:(i+1)*stride], a.data)
	}
	return FromBytes(arrays[0].dtype, outShape, buf)
}
