package tensor

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func arr(t *testing.T, d Dtype, shape []int, vals ...float64) *NDArray {
	t.Helper()
	a, err := FromFloat64s(d, shape, vals)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestElementwiseOps(t *testing.T) {
	a := arr(t, Float64, []int{3}, 1, 2, 3)
	b := arr(t, Float64, []int{3}, 10, 20, 30)

	sum, err := a.Add(b)
	if err != nil || !reflect.DeepEqual(sum.Float64s(), []float64{11, 22, 33}) {
		t.Fatalf("Add = %v, %v", sum.Float64s(), err)
	}
	diff, _ := b.Sub(a)
	if !reflect.DeepEqual(diff.Float64s(), []float64{9, 18, 27}) {
		t.Fatalf("Sub = %v", diff.Float64s())
	}
	prod, _ := a.Mul(b)
	if !reflect.DeepEqual(prod.Float64s(), []float64{10, 40, 90}) {
		t.Fatalf("Mul = %v", prod.Float64s())
	}
	quot, _ := b.Div(a)
	if !reflect.DeepEqual(quot.Float64s(), []float64{10, 10, 10}) {
		t.Fatalf("Div = %v", quot.Float64s())
	}
}

func TestScalarBroadcast(t *testing.T) {
	a := arr(t, Int32, []int{2, 2}, 1, 2, 3, 4)
	s := Scalar(Float64, 10)
	sum, err := a.Add(s)
	if err != nil || !reflect.DeepEqual(sum.Float64s(), []float64{11, 12, 13, 14}) {
		t.Fatalf("array+scalar = %v, %v", sum.Float64s(), err)
	}
	sum2, err := s.Add(a)
	if err != nil || !reflect.DeepEqual(sum2.Float64s(), []float64{11, 12, 13, 14}) {
		t.Fatalf("scalar+array = %v, %v", sum2.Float64s(), err)
	}
	diff, err := s.Sub(a)
	if err != nil || !reflect.DeepEqual(diff.Float64s(), []float64{9, 8, 7, 6}) {
		t.Fatalf("scalar-array = %v, %v", diff.Float64s(), err)
	}
	b := arr(t, Int32, []int{3}, 1, 2, 3)
	if _, err := a.Add(b); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestReductions(t *testing.T) {
	a := arr(t, Int32, []int{4}, 4, -1, 7, 2)
	if a.Sum() != 12 || a.Mean() != 3 || a.Min() != -1 || a.Max() != 7 {
		t.Fatalf("sum=%v mean=%v min=%v max=%v", a.Sum(), a.Mean(), a.Min(), a.Max())
	}
	empty := MustNew(Float64, 0)
	if !math.IsNaN(empty.Mean()) {
		t.Fatal("mean of empty should be NaN")
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Fatal("min/max of empty should be ±Inf")
	}
	if empty.Any() || !empty.All() {
		t.Fatal("Any(empty)=false, All(empty)=true expected")
	}
	z := arr(t, Int32, []int{3}, 0, 0, 1)
	if !z.Any() || z.All() {
		t.Fatal("Any/All on mixed values")
	}
}

func TestAxisReductions(t *testing.T) {
	// 2x3: [[1,2,3],[4,5,6]]
	a := arr(t, Float64, []int{2, 3}, 1, 2, 3, 4, 5, 6)
	m, err := a.ReduceMean(0)
	if err != nil || !reflect.DeepEqual(m.Float64s(), []float64{2.5, 3.5, 4.5}) {
		t.Fatalf("ReduceMean(0) = %v, %v", m.Float64s(), err)
	}
	m, err = a.ReduceMean(1)
	if err != nil || !reflect.DeepEqual(m.Float64s(), []float64{2, 5}) {
		t.Fatalf("ReduceMean(1) = %v, %v", m.Float64s(), err)
	}
	s, _ := a.ReduceSum(-1) // negative axis
	if !reflect.DeepEqual(s.Float64s(), []float64{6, 15}) {
		t.Fatalf("ReduceSum(-1) = %v", s.Float64s())
	}
	mx, _ := a.ReduceMax(0)
	if !reflect.DeepEqual(mx.Float64s(), []float64{4, 5, 6}) {
		t.Fatalf("ReduceMax(0) = %v", mx.Float64s())
	}
	mn, _ := a.ReduceMin(1)
	if !reflect.DeepEqual(mn.Float64s(), []float64{1, 4}) {
		t.Fatalf("ReduceMin(1) = %v", mn.Float64s())
	}
	if _, err := a.ReduceMean(2); err == nil {
		t.Fatal("axis out of range should error")
	}
}

// Property: ReduceSum along any axis preserves the total sum.
func TestReduceSumPreservesTotal(t *testing.T) {
	f := func(d0, d1, d2, axis uint8) bool {
		shape := []int{int(d0)%4 + 1, int(d1)%4 + 1, int(d2)%4 + 1}
		n := shape[0] * shape[1] * shape[2]
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64((i*13)%17) - 8
		}
		a, _ := FromFloat64s(Float64, shape, vals)
		r, err := a.ReduceSum(int(axis) % 3)
		if err != nil {
			return false
		}
		return math.Abs(r.Sum()-a.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClipAndMap(t *testing.T) {
	a := arr(t, Float64, []int{4}, -5, 0.5, 2, 99)
	c := a.Clip(0, 1)
	if !reflect.DeepEqual(c.Float64s(), []float64{0, 0.5, 1, 1}) {
		t.Fatalf("Clip = %v", c.Float64s())
	}
	m := a.Map(func(v float64) float64 { return v * 2 })
	if !reflect.DeepEqual(m.Float64s(), []float64{-10, 1, 4, 198}) {
		t.Fatalf("Map = %v", m.Float64s())
	}
}

func TestNormsAndSimilarity(t *testing.T) {
	a := arr(t, Float64, []int{2}, 3, 4)
	if a.L2() != 5 {
		t.Fatalf("L2 = %v", a.L2())
	}
	b := arr(t, Float64, []int{2}, 4, 3)
	d, err := a.Dot(b)
	if err != nil || d != 24 {
		t.Fatalf("Dot = %v, %v", d, err)
	}
	cs, err := a.CosineSimilarity(a)
	if err != nil || math.Abs(cs-1) > 1e-12 {
		t.Fatalf("self cosine = %v", cs)
	}
	zero := MustNew(Float64, 2)
	cs, err = a.CosineSimilarity(zero)
	if err != nil || cs != 0 {
		t.Fatalf("zero-norm cosine = %v, %v", cs, err)
	}
	short := MustNew(Float64, 3)
	if _, err := a.Dot(short); err == nil {
		t.Fatal("length mismatch Dot should error")
	}
}

func TestAsType(t *testing.T) {
	a := arr(t, Float64, []int{3}, 1.9, -2.9, 300)
	b, err := a.AsType(UInt8)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Float64s(); got[0] != 1 || got[1] != 0 || got[2] != 255 {
		t.Fatalf("AsType(uint8) = %v", got)
	}
	if _, err := a.AsType(InvalidDtype); err == nil {
		t.Fatal("invalid dtype should error")
	}
}

func TestStack(t *testing.T) {
	a := arr(t, UInt8, []int{2}, 1, 2)
	b := arr(t, UInt8, []int{2}, 3, 4)
	s, err := Stack([]*NDArray{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Shape(), []int{2, 2}) {
		t.Fatalf("stack shape = %v", s.Shape())
	}
	if !reflect.DeepEqual(s.Float64s(), []float64{1, 2, 3, 4}) {
		t.Fatalf("stack values = %v", s.Float64s())
	}
	c := arr(t, UInt8, []int{3}, 1, 2, 3)
	if _, err := Stack([]*NDArray{a, c}); err == nil {
		t.Fatal("mismatched shapes should error")
	}
	if _, err := Stack(nil); err == nil {
		t.Fatal("empty stack should error")
	}
}

func TestStackInto(t *testing.T) {
	a := arr(t, UInt8, []int{2}, 1, 2)
	b := arr(t, UInt8, []int{2}, 3, 4)
	buf := make([]byte, 4)
	s, err := StackInto([]*NDArray{a, b}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Shape(), []int{2, 2}) {
		t.Fatalf("stack shape = %v", s.Shape())
	}
	if !reflect.DeepEqual(s.Float64s(), []float64{1, 2, 3, 4}) {
		t.Fatalf("stack values = %v", s.Float64s())
	}
	// The output wraps the caller's buffer — no copy.
	if &buf[0] != &s.Bytes()[0] {
		t.Fatal("StackInto copied instead of wrapping buf")
	}
	// Same validation as Stack, checked before buf is touched.
	c := arr(t, UInt8, []int{3}, 1, 2, 3)
	if _, err := StackInto([]*NDArray{a, c}, make([]byte, 5)); err == nil {
		t.Fatal("mismatched shapes should error")
	}
	if _, err := StackInto(nil, nil); err == nil {
		t.Fatal("empty stack should error")
	}
	// And the buffer must be sized exactly.
	if _, err := StackInto([]*NDArray{a, b}, make([]byte, 3)); err == nil {
		t.Fatal("undersized buffer should error")
	}
	if _, err := StackInto([]*NDArray{a, b}, make([]byte, 5)); err == nil {
		t.Fatal("oversized buffer should error")
	}
}
