package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// NDArray is a C-contiguous n-dimensional array over a flat byte buffer,
// the unit of data exchanged between the storage format, the query engine,
// and the dataloader. The paper takes NumPy arrays as its fundamental block
// (§7); NDArray is the Go equivalent.
type NDArray struct {
	dtype Dtype
	shape []int
	data  []byte
}

// New allocates a zeroed array.
func New(dtype Dtype, shape ...int) (*NDArray, error) {
	n, err := checkShape(dtype, shape)
	if err != nil {
		return nil, err
	}
	return &NDArray{dtype: dtype, shape: append([]int(nil), shape...), data: make([]byte, n*dtype.Size())}, nil
}

// MustNew is New for statically-known-good arguments; it panics on error.
func MustNew(dtype Dtype, shape ...int) *NDArray {
	a, err := New(dtype, shape...)
	if err != nil {
		panic(err)
	}
	return a
}

// FromBytes wraps an existing buffer without copying. The buffer length must
// equal the product of shape times the element size.
func FromBytes(dtype Dtype, shape []int, data []byte) (*NDArray, error) {
	n, err := checkShape(dtype, shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n*dtype.Size() {
		return nil, fmt.Errorf("tensor: buffer %d bytes, shape %v of %s needs %d", len(data), shape, dtype, n*dtype.Size())
	}
	return &NDArray{dtype: dtype, shape: append([]int(nil), shape...), data: data}, nil
}

// FromFloat64s builds an array of the given dtype from float64 values in
// row-major order.
func FromFloat64s(dtype Dtype, shape []int, values []float64) (*NDArray, error) {
	a, err := New(dtype, shape...)
	if err != nil {
		return nil, err
	}
	if len(values) != a.Len() {
		return nil, fmt.Errorf("tensor: %d values for shape %v (%d elements)", len(values), shape, a.Len())
	}
	for i, v := range values {
		a.setFlat(i, v)
	}
	return a, nil
}

// FromInt64s builds an array of the given dtype from int64 values.
func FromInt64s(dtype Dtype, shape []int, values []int64) (*NDArray, error) {
	f := make([]float64, len(values))
	for i, v := range values {
		f[i] = float64(v)
	}
	return FromFloat64s(dtype, shape, f)
}

// Scalar wraps a single value as a 0-dimensional array.
func Scalar(dtype Dtype, v float64) *NDArray {
	a := MustNew(dtype)
	a.setFlat(0, v)
	return a
}

// FromString encodes a UTF-8 string as a 1-D uint8 array, the storage
// representation of text htype samples.
func FromString(s string) *NDArray {
	a, _ := FromBytes(UInt8, []int{len(s)}, []byte(s))
	return a
}

// AsString decodes a 1-D uint8 array back into a string.
func (a *NDArray) AsString() string { return string(a.data) }

func checkShape(dtype Dtype, shape []int) (int, error) {
	if !dtype.Valid() {
		return 0, fmt.Errorf("tensor: invalid dtype")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, fmt.Errorf("tensor: negative dimension in shape %v", shape)
		}
		n *= d
	}
	return n, nil
}

// Dtype returns the element type.
func (a *NDArray) Dtype() Dtype { return a.dtype }

// Shape returns the dimension sizes. Callers must not mutate it.
func (a *NDArray) Shape() []int { return a.shape }

// NDim returns the number of dimensions.
func (a *NDArray) NDim() int { return len(a.shape) }

// Len returns the number of elements.
func (a *NDArray) Len() int {
	n := 1
	for _, d := range a.shape {
		n *= d
	}
	return n
}

// NumBytes returns the byte length of the backing buffer.
func (a *NDArray) NumBytes() int { return len(a.data) }

// Bytes exposes the backing buffer. Callers must treat it as read-only
// unless they own the array.
func (a *NDArray) Bytes() []byte { return a.data }

// Clone returns a deep copy.
func (a *NDArray) Clone() *NDArray {
	data := make([]byte, len(a.data))
	copy(data, a.data)
	out, _ := FromBytes(a.dtype, a.shape, data)
	return out
}

// Reshape returns a view with a new shape of equal element count. The
// backing buffer is shared.
func (a *NDArray) Reshape(shape ...int) (*NDArray, error) {
	n, err := checkShape(a.dtype, shape)
	if err != nil {
		return nil, err
	}
	if n != a.Len() {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", a.shape, a.Len(), shape, n)
	}
	return &NDArray{dtype: a.dtype, shape: append([]int(nil), shape...), data: a.data}, nil
}

// strides returns element strides (not byte strides) for the shape.
func (a *NDArray) strides() []int {
	s := make([]int, len(a.shape))
	acc := 1
	for i := len(a.shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= a.shape[i]
	}
	return s
}

func (a *NDArray) flatIndex(idx []int) (int, error) {
	if len(idx) != len(a.shape) {
		return 0, fmt.Errorf("tensor: %d indices for %d-d array", len(idx), len(a.shape))
	}
	flat := 0
	for i, x := range idx {
		if x < 0 {
			x += a.shape[i]
		}
		if x < 0 || x >= a.shape[i] {
			return 0, fmt.Errorf("tensor: index %d out of bounds for axis %d (size %d)", idx[i], i, a.shape[i])
		}
		flat = flat*a.shape[i] + x
	}
	return flat, nil
}

// At returns the element at the given indices as float64. Negative indices
// count from the end of the axis.
func (a *NDArray) At(idx ...int) (float64, error) {
	flat, err := a.flatIndex(idx)
	if err != nil {
		return 0, err
	}
	return a.getFlat(flat), nil
}

// SetAt stores v (cast to the array dtype) at the given indices.
func (a *NDArray) SetAt(v float64, idx ...int) error {
	flat, err := a.flatIndex(idx)
	if err != nil {
		return err
	}
	a.setFlat(flat, v)
	return nil
}

// Item returns the sole element of a size-1 array.
func (a *NDArray) Item() (float64, error) {
	if a.Len() != 1 {
		return 0, fmt.Errorf("tensor: Item on array with %d elements", a.Len())
	}
	return a.getFlat(0), nil
}

// Float64s returns all elements as float64 in row-major order.
func (a *NDArray) Float64s() []float64 {
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = a.getFlat(i)
	}
	return out
}

// getFlat reads element i as float64.
func (a *NDArray) getFlat(i int) float64 {
	sz := a.dtype.Size()
	b := a.data[i*sz:]
	switch a.dtype {
	case Bool:
		if b[0] != 0 {
			return 1
		}
		return 0
	case UInt8:
		return float64(b[0])
	case UInt16:
		return float64(binary.LittleEndian.Uint16(b))
	case UInt32:
		return float64(binary.LittleEndian.Uint32(b))
	case UInt64:
		return float64(binary.LittleEndian.Uint64(b))
	case Int8:
		return float64(int8(b[0]))
	case Int16:
		return float64(int16(binary.LittleEndian.Uint16(b)))
	case Int32:
		return float64(int32(binary.LittleEndian.Uint32(b)))
	case Int64:
		return float64(int64(binary.LittleEndian.Uint64(b)))
	case Float32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	case Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}

// setFlat writes v at element i, casting to the array dtype.
func (a *NDArray) setFlat(i int, v float64) {
	sz := a.dtype.Size()
	b := a.data[i*sz:]
	bits := clampToDtype(v, a.dtype)
	switch sz {
	case 1:
		b[0] = byte(bits)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(bits))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(bits))
	case 8:
		binary.LittleEndian.PutUint64(b, bits)
	}
}

// Range selects [Start, Stop) along one axis; Stop == End selects to the
// end of the axis. Negative bounds count from the end.
type Range struct {
	Start, Stop int
}

// End marks an open upper bound in a Range.
const End = int(^uint(0) >> 1) // MaxInt

// All selects an entire axis.
func All() Range { return Range{0, End} }

// resolve normalizes r against an axis of size n.
func (r Range) resolve(n int) (lo, hi int, err error) {
	lo, hi = r.Start, r.Stop
	if lo < 0 {
		lo += n
	}
	if hi != End && hi < 0 {
		hi += n
	}
	if hi == End || hi > n {
		hi = n
	}
	if lo < 0 || lo > n || hi < lo {
		return 0, 0, fmt.Errorf("tensor: range [%d:%d) invalid for axis of size %d", r.Start, r.Stop, n)
	}
	return lo, hi, nil
}

// Slice copies the sub-array selected by ranges, one per leading axis;
// trailing axes not covered by ranges are taken whole. This implements the
// Python-style images[100:500, 100:500, 0:2] indexing TQL exposes (§4.4).
func (a *NDArray) Slice(ranges ...Range) (*NDArray, error) {
	if len(ranges) > len(a.shape) {
		return nil, fmt.Errorf("tensor: %d ranges for %d-d array", len(ranges), len(a.shape))
	}
	los := make([]int, len(a.shape))
	his := make([]int, len(a.shape))
	outShape := make([]int, len(a.shape))
	for i := range a.shape {
		r := All()
		if i < len(ranges) {
			r = ranges[i]
		}
		lo, hi, err := r.resolve(a.shape[i])
		if err != nil {
			return nil, err
		}
		los[i], his[i] = lo, hi
		outShape[i] = hi - lo
	}
	out, err := New(a.dtype, outShape...)
	if err != nil {
		return nil, err
	}
	if out.Len() == 0 {
		return out, nil
	}
	sz := a.dtype.Size()
	srcStrides := a.strides()
	// Copy row-by-row along the last axis.
	lastLen := (his[len(his)-1] - los[len(los)-1]) * sz
	idx := make([]int, len(a.shape))
	copy(idx, los)
	dstOff := 0
	for {
		srcFlat := 0
		for i, x := range idx {
			srcFlat += x * srcStrides[i]
		}
		copy(out.data[dstOff:dstOff+lastLen], a.data[srcFlat*sz:srcFlat*sz+lastLen])
		dstOff += lastLen
		// Advance the multi-index, skipping the last axis.
		i := len(idx) - 2
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < his[i] {
				break
			}
			idx[i] = los[i]
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// Index selects a single position along the first axis, reducing rank by
// one (NumPy's a[i]).
func (a *NDArray) Index(i int) (*NDArray, error) {
	if len(a.shape) == 0 {
		return nil, fmt.Errorf("tensor: cannot index 0-d array")
	}
	n := a.shape[0]
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("tensor: index %d out of bounds for axis 0 (size %d)", i, n)
	}
	sub := a.Len() / n
	sz := a.dtype.Size()
	out, _ := FromBytes(a.dtype, a.shape[1:], a.data[i*sub*sz:(i+1)*sub*sz])
	return out, nil
}

// Equal reports dtype, shape and content equality.
func (a *NDArray) Equal(b *NDArray) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.dtype != b.dtype || len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return string(a.data) == string(b.data)
}

// String renders a compact description, not the full contents.
func (a *NDArray) String() string {
	dims := make([]string, len(a.shape))
	for i, d := range a.shape {
		dims[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("NDArray(%s, [%s])", a.dtype, strings.Join(dims, ", "))
}
