// Package tensor provides the in-memory tensor substrate of the
// reproduction: NumPy-style n-dimensional arrays over flat byte buffers, the
// dtype lattice, numeric kernels used by the Tensor Query Language, and the
// htype system (§3.3) that types the columns of a Deep Lake dataset.
package tensor

import (
	"fmt"
	"math"
)

// Dtype enumerates element types, mirroring the NumPy dtypes the paper
// builds on (§3.2-3.3).
type Dtype uint8

// Supported dtypes.
const (
	InvalidDtype Dtype = iota
	Bool
	UInt8
	UInt16
	UInt32
	UInt64
	Int8
	Int16
	Int32
	Int64
	Float32
	Float64
)

var dtypeNames = map[Dtype]string{
	Bool:    "bool",
	UInt8:   "uint8",
	UInt16:  "uint16",
	UInt32:  "uint32",
	UInt64:  "uint64",
	Int8:    "int8",
	Int16:   "int16",
	Int32:   "int32",
	Int64:   "int64",
	Float32: "float32",
	Float64: "float64",
}

var dtypeSizes = map[Dtype]int{
	Bool:    1,
	UInt8:   1,
	UInt16:  2,
	UInt32:  4,
	UInt64:  8,
	Int8:    1,
	Int16:   2,
	Int32:   4,
	Int64:   8,
	Float32: 4,
	Float64: 8,
}

// String returns the NumPy-style name.
func (d Dtype) String() string {
	if s, ok := dtypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Size returns the element size in bytes.
func (d Dtype) Size() int {
	if s, ok := dtypeSizes[d]; ok {
		return s
	}
	return 0
}

// Valid reports whether d is a known dtype.
func (d Dtype) Valid() bool { _, ok := dtypeSizes[d]; return ok }

// IsFloat reports whether d is a floating-point dtype.
func (d Dtype) IsFloat() bool { return d == Float32 || d == Float64 }

// IsInteger reports whether d is a (signed or unsigned) integer dtype.
func (d Dtype) IsInteger() bool {
	switch d {
	case UInt8, UInt16, UInt32, UInt64, Int8, Int16, Int32, Int64:
		return true
	}
	return false
}

// ParseDtype resolves a NumPy-style dtype name.
func ParseDtype(name string) (Dtype, error) {
	for d, n := range dtypeNames {
		if n == name {
			return d, nil
		}
	}
	return InvalidDtype, fmt.Errorf("tensor: unknown dtype %q", name)
}

// clampToDtype converts a float64 value to the closest representable value
// of dtype d, returning the bit pattern as uint64. Floats pass through;
// integers saturate at their bounds, matching NumPy casting used for
// assignments from query expressions.
func clampToDtype(v float64, d Dtype) uint64 {
	switch d {
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Float32:
		return uint64(math.Float32bits(float32(v)))
	case Float64:
		return math.Float64bits(v)
	case UInt8:
		return uint64(clampUint(v, math.MaxUint8))
	case UInt16:
		return uint64(clampUint(v, math.MaxUint16))
	case UInt32:
		return uint64(clampUint(v, math.MaxUint32))
	case UInt64:
		return clampUint(v, math.MaxUint64)
	case Int8:
		return uint64(clampInt(v, math.MinInt8, math.MaxInt8))
	case Int16:
		return uint64(clampInt(v, math.MinInt16, math.MaxInt16))
	case Int32:
		return uint64(clampInt(v, math.MinInt32, math.MaxInt32))
	case Int64:
		return uint64(clampInt(v, math.MinInt64, math.MaxInt64))
	}
	return 0
}

func clampUint(v float64, max uint64) uint64 {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v >= float64(max) {
		return max
	}
	return uint64(v)
}

func clampInt(v float64, min, max int64) int64 {
	if math.IsNaN(v) {
		return 0
	}
	if v <= float64(min) {
		return min
	}
	if v >= float64(max) {
		return max
	}
	return int64(v)
}
