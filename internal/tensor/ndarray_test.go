package tensor

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDtypeBasics(t *testing.T) {
	cases := []struct {
		d    Dtype
		name string
		size int
	}{
		{Bool, "bool", 1}, {UInt8, "uint8", 1}, {UInt16, "uint16", 2},
		{UInt32, "uint32", 4}, {UInt64, "uint64", 8}, {Int8, "int8", 1},
		{Int16, "int16", 2}, {Int32, "int32", 4}, {Int64, "int64", 8},
		{Float32, "float32", 4}, {Float64, "float64", 8},
	}
	for _, c := range cases {
		if c.d.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.d, c.d.String(), c.name)
		}
		if c.d.Size() != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.name, c.d.Size(), c.size)
		}
		parsed, err := ParseDtype(c.name)
		if err != nil || parsed != c.d {
			t.Errorf("ParseDtype(%q) = %v, %v", c.name, parsed, err)
		}
	}
	if _, err := ParseDtype("complex128"); err == nil {
		t.Error("ParseDtype should reject unknown names")
	}
	if InvalidDtype.Valid() {
		t.Error("InvalidDtype must not be valid")
	}
}

func TestNewAndAccessors(t *testing.T) {
	a, err := New(Int32, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 6 || a.NumBytes() != 24 || a.NDim() != 2 {
		t.Fatalf("Len=%d NumBytes=%d NDim=%d", a.Len(), a.NumBytes(), a.NDim())
	}
	if err := a.SetAt(42, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := a.At(1, 2)
	if err != nil || v != 42 {
		t.Fatalf("At = %v, %v", v, err)
	}
	// Negative indexing.
	v, err = a.At(-1, -1)
	if err != nil || v != 42 {
		t.Fatalf("negative At = %v, %v", v, err)
	}
	if _, err := a.At(2, 0); err == nil {
		t.Fatal("out of bounds At should error")
	}
	if _, err := a.At(0); err == nil {
		t.Fatal("wrong arity At should error")
	}
	if _, err := New(Int32, -1); err == nil {
		t.Fatal("negative dim should error")
	}
}

func TestEveryDtypeRoundTripsValues(t *testing.T) {
	vals := map[Dtype][]float64{
		Bool:    {0, 1},
		UInt8:   {0, 1, 255},
		UInt16:  {0, 65535},
		UInt32:  {0, 4294967295},
		UInt64:  {0, 1e15},
		Int8:    {-128, 0, 127},
		Int16:   {-32768, 32767},
		Int32:   {-2147483648, 2147483647},
		Int64:   {-1e15, 1e15},
		Float32: {-1.5, 0, 3.25},
		Float64: {-1e300, math.Pi},
	}
	for d, vs := range vals {
		a := MustNew(d, len(vs))
		for i, v := range vs {
			if err := a.SetAt(v, i); err != nil {
				t.Fatal(err)
			}
		}
		for i, v := range vs {
			got, _ := a.At(i)
			if got != v {
				t.Errorf("%s: round trip %v -> %v", d, v, got)
			}
		}
	}
}

func TestIntegerSaturation(t *testing.T) {
	a := MustNew(UInt8, 3)
	a.SetAt(300, 0)
	a.SetAt(-5, 1)
	a.SetAt(math.NaN(), 2)
	want := []float64{255, 0, 0}
	if got := a.Float64s(); !reflect.DeepEqual(got, want) {
		t.Fatalf("saturation = %v, want %v", got, want)
	}
	b := MustNew(Int8, 2)
	b.SetAt(1000, 0)
	b.SetAt(-1000, 1)
	if got := b.Float64s(); got[0] != 127 || got[1] != -128 {
		t.Fatalf("int8 saturation = %v", got)
	}
}

func TestFromBytesValidation(t *testing.T) {
	if _, err := FromBytes(Int32, []int{2}, make([]byte, 7)); err == nil {
		t.Fatal("short buffer should error")
	}
	a, err := FromBytes(UInt8, []int{2, 2}, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At(1, 0); v != 3 {
		t.Fatalf("At(1,0) = %v, want 3", v)
	}
}

func TestReshape(t *testing.T) {
	a, _ := FromFloat64s(Float32, []int{6}, []float64{1, 2, 3, 4, 5, 6})
	b, err := a.Reshape(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := b.At(1, 1); v != 5 {
		t.Fatalf("reshaped At(1,1) = %v, want 5", v)
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Fatal("size-changing reshape should error")
	}
	// Reshape shares the buffer.
	b.SetAt(99, 0, 0)
	if v, _ := a.At(0); v != 99 {
		t.Fatal("reshape must share data")
	}
}

func TestIndexReducesRank(t *testing.T) {
	a, _ := FromFloat64s(Int32, []int{3, 2}, []float64{1, 2, 3, 4, 5, 6})
	row, err := a.Index(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row.Float64s(), []float64{3, 4}) {
		t.Fatalf("Index(1) = %v", row.Float64s())
	}
	last, err := a.Index(-1)
	if err != nil || last.Float64s()[0] != 5 {
		t.Fatalf("Index(-1) = %v, %v", last, err)
	}
	if _, err := a.Index(3); err == nil {
		t.Fatal("out-of-range Index should error")
	}
	s := Scalar(Float64, 1)
	if _, err := s.Index(0); err == nil {
		t.Fatal("Index on 0-d should error")
	}
}

func TestSlice(t *testing.T) {
	// 4x4 matrix 0..15.
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	a, _ := FromFloat64s(Int32, []int{4, 4}, vals)

	got, err := a.Slice(Range{1, 3}, Range{2, End})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape(), []int{2, 2}) {
		t.Fatalf("slice shape = %v", got.Shape())
	}
	if !reflect.DeepEqual(got.Float64s(), []float64{6, 7, 10, 11}) {
		t.Fatalf("slice values = %v", got.Float64s())
	}

	// Trailing axes default to All.
	got, err = a.Slice(Range{0, 1})
	if err != nil || !reflect.DeepEqual(got.Float64s(), []float64{0, 1, 2, 3}) {
		t.Fatalf("partial slice = %v, %v", got, err)
	}

	// Negative bounds.
	got, err = a.Slice(Range{-2, End}, Range{-1, End})
	if err != nil || !reflect.DeepEqual(got.Float64s(), []float64{11, 15}) {
		t.Fatalf("negative slice = %v, %v", got.Float64s(), err)
	}

	// Empty slice.
	got, err = a.Slice(Range{2, 2})
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty slice = %v, %v", got, err)
	}

	// Errors.
	if _, err := a.Slice(Range{3, 1}); err == nil {
		t.Fatal("inverted range should error")
	}
	if _, err := a.Slice(All(), All(), All()); err == nil {
		t.Fatal("too many ranges should error")
	}
}

// Property: slicing agrees with a brute-force reference implementation on
// random 3-d arrays.
func TestSliceProperty(t *testing.T) {
	f := func(d0, d1, d2 uint8, s0, e0, s1, e1 uint8) bool {
		shape := []int{int(d0)%5 + 1, int(d1)%5 + 1, int(d2)%4 + 1}
		n := shape[0] * shape[1] * shape[2]
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i * 7 % 251)
		}
		a, err := FromFloat64s(Float64, shape, vals)
		if err != nil {
			return false
		}
		lo0, hi0 := int(s0)%shape[0], int(e0)%(shape[0]+1)
		lo1, hi1 := int(s1)%shape[1], int(e1)%(shape[1]+1)
		if hi0 < lo0 || hi1 < lo1 {
			return true // skip invalid ranges
		}
		got, err := a.Slice(Range{lo0, hi0}, Range{lo1, hi1})
		if err != nil {
			return false
		}
		// Reference: explicit triple loop.
		for i := lo0; i < hi0; i++ {
			for j := lo1; j < hi1; j++ {
				for k := 0; k < shape[2]; k++ {
					want, _ := a.At(i, j, k)
					have, err := got.At(i-lo0, j-lo1, k)
					if err != nil || have != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSamples(t *testing.T) {
	s := FromString("hello deep lake")
	if s.Dtype() != UInt8 || s.Len() != 15 {
		t.Fatalf("FromString = %v", s)
	}
	if s.AsString() != "hello deep lake" {
		t.Fatalf("AsString = %q", s.AsString())
	}
}

func TestEqualAndClone(t *testing.T) {
	a, _ := FromFloat64s(Int16, []int{2, 2}, []float64{1, 2, 3, 4})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	b.SetAt(9, 0, 0)
	if a.Equal(b) {
		t.Fatal("mutated clone must differ")
	}
	if v, _ := a.At(0, 0); v != 1 {
		t.Fatal("clone must not share data")
	}
	c, _ := FromFloat64s(Int32, []int{2, 2}, []float64{1, 2, 3, 4})
	if a.Equal(c) {
		t.Fatal("different dtypes must not be equal")
	}
	var nilArr *NDArray
	if nilArr.Equal(a) || a.Equal(nil) {
		t.Fatal("nil comparisons")
	}
	if !nilArr.Equal(nil) {
		t.Fatal("nil == nil")
	}
}
