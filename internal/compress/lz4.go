package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// lz4 implements the LZ4 block format from scratch: a byte-oriented LZ77
// variant with 64KB windows, 4-byte minimum matches, and token-encoded
// sequence lengths. It is the paper's choice for chunk compression of small
// numeric tensors (labels, shapes) where decode speed matters far more than
// ratio.
//
// Framing: because the raw LZ4 block format does not record the decompressed
// size, Compress prepends a one-byte mode tag (lz4Raw when compression did
// not help, lz4Block otherwise) and a uvarint decompressed length.
type lz4 struct{}

func (lz4) Name() string { return "lz4" }

const (
	lz4Raw   = 0x00
	lz4Block = 0x01

	lz4MinMatch = 4
	// The block format forbids matches starting within the final 12
	// bytes; the last 5 bytes must be literals.
	lz4MFLimit    = 12
	lz4LastLits   = 5
	lz4MaxOffset  = 65535
	lz4HashLog    = 16
	lz4TokenLits  = 15
	lz4TokenMatch = 15
)

// lz4CompressBound is the worst-case size of an LZ4 block for n input bytes.
func lz4CompressBound(n int) int { return n + n/255 + 16 }

func (lz4) Compress(src []byte) ([]byte, error) {
	header := make([]byte, 0, binary.MaxVarintLen64+1)
	header = append(header, lz4Block)
	header = binary.AppendUvarint(header, uint64(len(src)))

	block := lz4CompressBlock(src)
	if block == nil || len(block)+len(header) >= len(src)+len(header) {
		// Incompressible: store raw.
		out := make([]byte, 0, len(src)+len(header))
		out = append(out, lz4Raw)
		out = binary.AppendUvarint(out, uint64(len(src)))
		return append(out, src...), nil
	}
	return append(header, block...), nil
}

func (c lz4) Decompress(src []byte) ([]byte, error) {
	return c.DecompressAppend(src, nil)
}

// DecompressAppend implements AppendDecompressor: the output grows from
// dst[:0], so a caller looping over chunks reuses one buffer.
func (lz4) DecompressAppend(src, dst []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, errors.New("lz4: empty input")
	}
	mode := src[0]
	size, n := binary.Uvarint(src[1:])
	if n <= 0 {
		return nil, errors.New("lz4: bad size header")
	}
	payload := src[1+n:]
	switch mode {
	case lz4Raw:
		if uint64(len(payload)) != size {
			return nil, fmt.Errorf("lz4: raw payload size %d != header %d", len(payload), size)
		}
		return append(dst[:0], payload...), nil
	case lz4Block:
		return lz4DecompressBlock(payload, int(size), dst)
	default:
		return nil, fmt.Errorf("lz4: unknown mode byte %#x", mode)
	}
}

func lz4Hash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lz4HashLog)
}

func le32(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

// lz4CompressBlock encodes src as a raw LZ4 block. It returns nil when src
// is too short to contain any match, signalling the caller to store raw.
func lz4CompressBlock(src []byte) []byte {
	if len(src) < lz4MFLimit+lz4MinMatch {
		return nil
	}
	var table [1 << lz4HashLog]int32
	for i := range table {
		table[i] = -1
	}
	dst := make([]byte, 0, lz4CompressBound(len(src)))
	anchor := 0
	i := 0
	limit := len(src) - lz4MFLimit
	for i <= limit {
		h := lz4Hash(le32(src[i:]))
		ref := int(table[h])
		table[h] = int32(i)
		if ref < 0 || i-ref > lz4MaxOffset || le32(src[ref:]) != le32(src[i:]) {
			i++
			continue
		}
		// Extend the match forward, leaving the final literals intact.
		matchLen := lz4MinMatch
		maxLen := len(src) - lz4LastLits - i
		for matchLen < maxLen && src[ref+matchLen] == src[i+matchLen] {
			matchLen++
		}
		dst = lz4EmitSequence(dst, src[anchor:i], i-ref, matchLen)
		i += matchLen
		anchor = i
	}
	if anchor == 0 {
		return nil // no matches at all; raw storage is cheaper
	}
	dst = lz4EmitLiterals(dst, src[anchor:])
	return dst
}

// lz4EmitSequence appends one literal run + match to dst.
func lz4EmitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlToken := matchLen - lz4MinMatch

	token := byte(0)
	if litLen >= lz4TokenLits {
		token = lz4TokenLits << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlToken >= lz4TokenMatch {
		token |= lz4TokenMatch
	} else {
		token |= byte(mlToken)
	}
	dst = append(dst, token)
	if litLen >= lz4TokenLits {
		dst = lz4AppendExtLen(dst, litLen-lz4TokenLits)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mlToken >= lz4TokenMatch {
		dst = lz4AppendExtLen(dst, mlToken-lz4TokenMatch)
	}
	return dst
}

// lz4EmitLiterals appends the trailing literal-only sequence.
func lz4EmitLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= lz4TokenLits {
		dst = append(dst, lz4TokenLits<<4)
		dst = lz4AppendExtLen(dst, litLen-lz4TokenLits)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func lz4AppendExtLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

var errLZ4Corrupt = errors.New("lz4: corrupt block")

// lz4DecompressBlock decodes a raw LZ4 block into exactly size bytes,
// reusing scratch's capacity when it suffices.
func lz4DecompressBlock(src []byte, size int, scratch []byte) ([]byte, error) {
	dst := scratch[:0]
	if cap(dst) < size {
		dst = make([]byte, 0, size)
	}
	s := 0
	for s < len(src) {
		token := src[s]
		s++
		// Literals.
		litLen := int(token >> 4)
		if litLen == lz4TokenLits {
			n, ns, err := lz4ReadExtLen(src, s)
			if err != nil {
				return nil, err
			}
			litLen += n
			s = ns
		}
		if s+litLen > len(src) {
			return nil, errLZ4Corrupt
		}
		dst = append(dst, src[s:s+litLen]...)
		s += litLen
		if s == len(src) {
			break // final literal-only sequence
		}
		// Match.
		if s+2 > len(src) {
			return nil, errLZ4Corrupt
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 || offset > len(dst) {
			return nil, errLZ4Corrupt
		}
		matchLen := int(token & 0x0F)
		if matchLen == lz4TokenMatch {
			n, ns, err := lz4ReadExtLen(src, s)
			if err != nil {
				return nil, err
			}
			matchLen += n
			s = ns
		}
		matchLen += lz4MinMatch
		// Overlapping copy must proceed byte-wise.
		start := len(dst) - offset
		for k := 0; k < matchLen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(dst) != size {
		return nil, fmt.Errorf("lz4: decoded %d bytes, header said %d", len(dst), size)
	}
	return dst, nil
}

func lz4ReadExtLen(src []byte, s int) (n, next int, err error) {
	for {
		if s >= len(src) {
			return 0, 0, errLZ4Corrupt
		}
		b := src[s]
		s++
		n += int(b)
		if b != 255 {
			return n, s, nil
		}
	}
}

func init() {
	Register(lz4{})
}
