package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryResolvesAllCodecs(t *testing.T) {
	for _, name := range []string{"none", "lz4", "deflate", "gzip"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("codec %q reports name %q", name, c.Name())
		}
	}
	if _, err := ByName(""); err != nil {
		t.Fatalf("empty name should resolve to identity codec: %v", err)
	}
	if _, err := ByName("zstd-o-matic"); err == nil {
		t.Fatal("unknown codec should error")
	}
}

func roundTrip(t *testing.T, c Codec, src []byte) {
	t.Helper()
	enc, err := c.Compress(src)
	if err != nil {
		t.Fatalf("%s compress: %v", c.Name(), err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatalf("%s decompress: %v", c.Name(), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%s round trip mismatch: %d bytes in, %d out", c.Name(), len(src), len(dec))
	}
}

func TestRoundTripsAcrossCodecs(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("hello"),
		[]byte(strings.Repeat("abcd", 10000)),
		bytes.Repeat([]byte{0}, 1<<16),
		[]byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500)),
	}
	// A pseudo-random incompressible block.
	rng := rand.New(rand.NewSource(7))
	noise := make([]byte, 100_000)
	rng.Read(noise)
	inputs = append(inputs, noise)

	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			roundTrip(t, c, in)
		}
	}
}

func TestLZ4CompressesRepetitiveData(t *testing.T) {
	c, _ := ByName("lz4")
	src := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	enc, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(src)/10 {
		t.Fatalf("lz4 ratio too poor on repetitive data: %d -> %d", len(src), len(enc))
	}
}

func TestLZ4StoresIncompressibleRaw(t *testing.T) {
	c, _ := ByName("lz4")
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 10_000)
	rng.Read(src)
	enc, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(src)+16 {
		t.Fatalf("raw fallback added too much overhead: %d -> %d", len(src), len(enc))
	}
	if enc[0] != lz4Raw {
		t.Fatalf("expected raw mode for random data, got mode %#x", enc[0])
	}
}

func TestLZ4RejectsCorruptInput(t *testing.T) {
	c, _ := ByName("lz4")
	cases := [][]byte{
		{},
		{lz4Block},                              // missing size
		{lz4Block, 0x05},                        // claims 5 bytes, no payload
		{0x77, 0x01, 0x00},                      // unknown mode
		{lz4Raw, 0x05, 'a', 'b'},                // raw payload shorter than header
		{lz4Block, 0x10, 0xFF, 0xFF},            // nonsense block
		{lz4Block, 0x08, 0x02, 'a'},             // literal run past end
		{lz4Block, 0x04, 0x01, 'a', 0x09, 0x00}, // offset beyond output
	}
	for i, in := range cases {
		if _, err := c.Decompress(in); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

// Property: LZ4 round-trips arbitrary byte strings.
func TestLZ4RoundTripProperty(t *testing.T) {
	c, _ := ByName("lz4")
	f := func(src []byte) bool {
		enc, err := c.Compress(src)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: LZ4 round-trips highly repetitive strings with overlapping
// matches (offset < match length), the classic decoder pitfall.
func TestLZ4OverlapProperty(t *testing.T) {
	c, _ := ByName("lz4")
	f := func(seed int64, unit uint8, reps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		u := int(unit)%7 + 1
		pattern := make([]byte, u)
		rng.Read(pattern)
		src := bytes.Repeat(pattern, int(reps)%2000+20)
		enc, err := c.Compress(src)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func makeTestImage(h, w, ch int) []byte {
	pix := make([]byte, h*w*ch)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < ch; c++ {
				pix[(y*w+x)*ch+c] = byte((x*3 + y*5 + c*17) % 256)
			}
		}
	}
	return pix
}

func TestPNGSampleCodecLossless(t *testing.T) {
	c, err := SampleByName("png")
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []int{1, 3} {
		pix := makeTestImage(32, 48, ch)
		enc, err := c.Encode(pix, 32, 48, ch)
		if err != nil {
			t.Fatal(err)
		}
		dec, h, w, dch, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if h != 32 || w != 48 || dch != ch {
			t.Fatalf("shape = %dx%dx%d, want 32x48x%d", h, w, dch, ch)
		}
		if !bytes.Equal(dec, pix) {
			t.Fatalf("png must be lossless (ch=%d)", ch)
		}
	}
}

func TestJPEGSampleCodecApproximate(t *testing.T) {
	c, err := SampleByName("jpeg")
	if err != nil {
		t.Fatal(err)
	}
	pix := makeTestImage(64, 64, 3)
	enc, err := c.Encode(pix, 64, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(pix) {
		t.Fatalf("jpeg did not compress smooth gradient: %d -> %d", len(pix), len(enc))
	}
	dec, h, w, ch, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h != 64 || w != 64 || ch != 3 {
		t.Fatalf("shape = %dx%dx%d", h, w, ch)
	}
	// Lossy: verify mean absolute error is modest rather than equality.
	var sum int
	for i := range pix {
		d := int(pix[i]) - int(dec[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	if mae := float64(sum) / float64(len(pix)); mae > 20 {
		t.Fatalf("jpeg mean abs error %.1f too high", mae)
	}
}

func TestSampleCodecValidation(t *testing.T) {
	c, _ := SampleByName("png")
	if _, err := c.Encode(make([]byte, 10), 2, 2, 3); err == nil {
		t.Fatal("wrong buffer length should error")
	}
	if _, err := c.Encode(nil, 0, 0, 3); err == nil {
		t.Fatal("zero dims should error")
	}
	if _, err := c.Encode(make([]byte, 8), 2, 2, 2); err == nil {
		t.Fatal("2-channel images unsupported, should error")
	}
	if _, _, _, _, err := c.Decode([]byte("not a png")); err == nil {
		t.Fatal("garbage decode should error")
	}
}

func TestSampleRegistry(t *testing.T) {
	names := SampleNames()
	if len(names) < 2 {
		t.Fatalf("expected jpeg and png registered, got %v", names)
	}
	if _, err := SampleByName("webp"); err == nil {
		t.Fatal("unknown sample codec should error")
	}
}
