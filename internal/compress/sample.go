package compress

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"image/png"
	"sort"
	"sync"
)

// SampleCodec encodes and decodes individual media samples (the paper's
// "sample compression", §5: an image tensor with sample compression JPEG
// copies raw JPEG bytes straight into chunks). Pixels are exchanged as raw
// HWC uint8 buffers, the layout the dataloader hands to the training loop.
type SampleCodec interface {
	// Name is the identifier recorded in tensor metadata (e.g. "jpeg").
	Name() string
	// Encode turns raw HWC uint8 pixels into the media format.
	Encode(pixels []byte, height, width, channels int) ([]byte, error)
	// Decode turns media bytes back into raw HWC uint8 pixels.
	Decode(data []byte) (pixels []byte, height, width, channels int, err error)
}

var (
	sampleMu       sync.RWMutex
	sampleRegistry = make(map[string]SampleCodec)
)

// RegisterSample makes a sample codec available by name.
func RegisterSample(c SampleCodec) {
	sampleMu.Lock()
	defer sampleMu.Unlock()
	if _, dup := sampleRegistry[c.Name()]; dup {
		panic(fmt.Sprintf("compress: duplicate sample codec %q", c.Name()))
	}
	sampleRegistry[c.Name()] = c
}

// SampleByName returns the sample codec registered under name.
func SampleByName(name string) (SampleCodec, error) {
	sampleMu.RLock()
	defer sampleMu.RUnlock()
	c, ok := sampleRegistry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown sample codec %q", name)
	}
	return c, nil
}

// SampleNames lists registered sample codec names in sorted order.
func SampleNames() []string {
	sampleMu.RLock()
	defer sampleMu.RUnlock()
	out := make([]string, 0, len(sampleRegistry))
	for name := range sampleRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// pixelsToImage wraps an HWC uint8 buffer as an image.Image without copying
// when possible.
func pixelsToImage(pixels []byte, height, width, channels int) (image.Image, error) {
	if height <= 0 || width <= 0 {
		return nil, fmt.Errorf("compress: invalid image dims %dx%d", height, width)
	}
	if len(pixels) != height*width*channels {
		return nil, fmt.Errorf("compress: pixel buffer %d bytes != %d*%d*%d", len(pixels), height, width, channels)
	}
	switch channels {
	case 1:
		return &image.Gray{Pix: pixels, Stride: width, Rect: image.Rect(0, 0, width, height)}, nil
	case 3:
		// Expand RGB to RGBA for the stdlib encoders.
		rgba := image.NewRGBA(image.Rect(0, 0, width, height))
		for y := 0; y < height; y++ {
			src := pixels[y*width*3 : (y+1)*width*3]
			dst := rgba.Pix[y*rgba.Stride : y*rgba.Stride+width*4]
			for x := 0; x < width; x++ {
				dst[x*4+0] = src[x*3+0]
				dst[x*4+1] = src[x*3+1]
				dst[x*4+2] = src[x*3+2]
				dst[x*4+3] = 0xFF
			}
		}
		return rgba, nil
	case 4:
		return &image.RGBA{Pix: pixels, Stride: width * 4, Rect: image.Rect(0, 0, width, height)}, nil
	default:
		return nil, fmt.Errorf("compress: unsupported channel count %d", channels)
	}
}

// DecoderInto is an optional SampleCodec extension: DecodeInto is Decode
// with the flattened HWC pixel buffer obtained from alloc instead of the
// heap, so a caller holding an arena can serve the per-sample decode
// scratch from pooled slabs. The codec's internal decode state (the stdlib
// image decoders' planes) still lives wherever the codec puts it.
type DecoderInto interface {
	DecodeInto(data []byte, alloc func(int) []byte) (pixels []byte, height, width, channels int, err error)
}

// imageToPixels flattens any decoded image into an HWC uint8 buffer. Gray
// images come back with 1 channel, everything else with 3 (alpha dropped),
// which matches the htype contract for image tensors.
func imageToPixels(img image.Image) (pixels []byte, height, width, channels int) {
	return imageToPixelsInto(img, func(n int) []byte { return make([]byte, n) })
}

// imageToPixelsInto is imageToPixels with the output buffer drawn from
// alloc; alloc must return a slice of exactly the requested length.
func imageToPixelsInto(img image.Image, alloc func(int) []byte) (pixels []byte, height, width, channels int) {
	b := img.Bounds()
	height, width = b.Dy(), b.Dx()
	if g, ok := img.(*image.Gray); ok {
		channels = 1
		pixels = alloc(height * width)
		for y := 0; y < height; y++ {
			copy(pixels[y*width:(y+1)*width], g.Pix[y*g.Stride:y*g.Stride+width])
		}
		return pixels, height, width, channels
	}
	channels = 3
	pixels = alloc(height * width * 3)
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := color.RGBAModel.Convert(img.At(x, y)).(color.RGBA)
			pixels[i] = c.R
			pixels[i+1] = c.G
			pixels[i+2] = c.B
			i += 3
		}
	}
	return pixels, height, width, channels
}

// jpegCodec is the lossy photographic sample codec (stdlib image/jpeg).
type jpegCodec struct {
	quality int
}

func (jpegCodec) Name() string { return "jpeg" }

func (c jpegCodec) Encode(pixels []byte, height, width, channels int) ([]byte, error) {
	img, err := pixelsToImage(pixels, height, width, channels)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, img, &jpeg.Options{Quality: c.quality}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (jpegCodec) Decode(data []byte) ([]byte, int, int, int, error) {
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	p, h, w, ch := imageToPixels(img)
	return p, h, w, ch, nil
}

func (jpegCodec) DecodeInto(data []byte, alloc func(int) []byte) ([]byte, int, int, int, error) {
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	p, h, w, ch := imageToPixelsInto(img, alloc)
	return p, h, w, ch, nil
}

// pngCodec is the lossless image sample codec (stdlib image/png).
type pngCodec struct{}

func (pngCodec) Name() string { return "png" }

func (pngCodec) Encode(pixels []byte, height, width, channels int) ([]byte, error) {
	img, err := pixelsToImage(pixels, height, width, channels)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (pngCodec) Decode(data []byte) ([]byte, int, int, int, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	p, h, w, ch := imageToPixels(img)
	return p, h, w, ch, nil
}

func (pngCodec) DecodeInto(data []byte, alloc func(int) []byte) ([]byte, int, int, int, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	p, h, w, ch := imageToPixelsInto(img, alloc)
	return p, h, w, ch, nil
}

func init() {
	RegisterSample(jpegCodec{quality: 91})
	RegisterSample(pngCodec{})
}
