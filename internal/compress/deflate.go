package compress

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"io"
)

// deflateCodec wraps the standard library DEFLATE implementation. It offers
// a higher ratio than LZ4 at higher CPU cost, the trade-off the format
// design section (§7.1) discusses for rarely-read tensors.
type deflateCodec struct{}

func (deflateCodec) Name() string { return "deflate" }

func (deflateCodec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (deflateCodec) Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	return io.ReadAll(r)
}

// DecompressAppend implements AppendDecompressor over the streaming reader.
func (deflateCodec) DecompressAppend(src, dst []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	return readAllInto(r, dst)
}

// gzipCodec is DEFLATE with the gzip container, provided for parity with
// formats (TFRecord, WebDataset) that conventionally gzip their payloads.
type gzipCodec struct{}

func (gzipCodec) Name() string { return "gzip" }

func (gzipCodec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (gzipCodec) Decompress(src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// DecompressAppend implements AppendDecompressor over the streaming reader.
func (gzipCodec) DecompressAppend(src, dst []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return readAllInto(r, dst)
}

// readAllInto is io.ReadAll growing from dst[:0] instead of a fresh buffer.
func readAllInto(r io.Reader, dst []byte) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func init() {
	Register(deflateCodec{})
	Register(gzipCodec{})
}
