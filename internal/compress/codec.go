// Package compress provides the compression substrate for the Tensor Storage
// Format. The paper uses two distinct notions of compression (§5):
//
//   - chunk compression: a byte codec applied to a whole chunk (the paper's
//     example stores class_label chunks with LZ4);
//   - sample compression: a per-sample media codec (the paper's example
//     stores image samples as JPEG so raw JPEG files can be copied into
//     chunks without recoding).
//
// This package implements both: byte codecs (a from-scratch LZ4 block codec,
// DEFLATE via the standard library, and the identity codec) and image sample
// codecs (JPEG and PNG over stdlib image packages).
package compress

import (
	"fmt"
	"sort"
	"sync"
)

// Codec compresses and decompresses whole byte blocks. Implementations must
// be safe for concurrent use.
type Codec interface {
	// Name is the identifier recorded in tensor metadata (e.g. "lz4").
	Name() string
	// Compress returns an encoded block that Decompress restores exactly.
	Compress(src []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(src []byte) ([]byte, error)
}

// AppendDecompressor is the allocation-aware decompression fast path: codecs
// that can decode into a caller-provided buffer implement it, letting hot
// read loops (chunk decode in a scan) reuse one scratch buffer instead of
// allocating per chunk. dst's capacity is reused; its contents are
// overwritten from length zero.
type AppendDecompressor interface {
	DecompressAppend(src, dst []byte) ([]byte, error)
}

// DecompressAppend decodes src with c, reusing dst's capacity when the codec
// supports it and falling back to plain Decompress (a fresh allocation)
// otherwise. Callers must use the returned slice, which may or may not alias
// dst.
func DecompressAppend(c Codec, src, dst []byte) ([]byte, error) {
	if ad, ok := c.(AppendDecompressor); ok {
		return ad.DecompressAppend(src, dst)
	}
	return c.Decompress(src)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Codec)
)

// Register makes a codec available by name. It panics on duplicates, which
// indicates a programmer error at init time.
func Register(c Codec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("compress: duplicate codec %q", c.Name()))
	}
	registry[c.Name()] = c
}

// ByName returns the codec registered under name. The empty string and
// "none" resolve to the identity codec.
func ByName(name string) (Codec, error) {
	if name == "" {
		name = "none"
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codec names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// none is the identity codec.
type none struct{}

func (none) Name() string { return "none" }

func (none) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

func (none) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

func (none) DecompressAppend(src, dst []byte) ([]byte, error) {
	return append(dst[:0], src...), nil
}

func init() {
	Register(none{})
}
