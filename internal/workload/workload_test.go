package workload

import (
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

func TestImageDeterministicAndShaped(t *testing.T) {
	spec := Small250()
	a := spec.Image(3)
	b := spec.Image(3)
	c := spec.Image(4)
	if !reflect.DeepEqual(a.Shape(), []int{250, 250, 3}) {
		t.Fatalf("shape = %v", a.Shape())
	}
	if !a.Equal(b) {
		t.Fatal("same (seed, index) must reproduce the same image")
	}
	if a.Equal(c) {
		t.Fatal("different indices must differ")
	}
}

func TestImagesAreJPEGCompressible(t *testing.T) {
	// The generator must produce images that JPEG compresses at a
	// realistic ratio (neither flat nor pure noise).
	codec, err := compress.SampleByName("jpeg")
	if err != nil {
		t.Fatal(err)
	}
	spec := Small250()
	img := spec.Image(0)
	s := img.Shape()
	enc, err := codec.Encode(img.Bytes(), s[0], s[1], s[2])
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(img.NumBytes()) / float64(len(enc))
	if ratio < 2 || ratio > 80 {
		t.Fatalf("jpeg ratio = %.1fx, want a realistic 2-80x", ratio)
	}
}

func TestAllSpecs(t *testing.T) {
	for _, spec := range []ImageSpec{FFHQLike(), Small250(), ImageNetLike(), LAIONLike()} {
		img := spec.Image(0)
		if img.NumBytes() != spec.Height*spec.Width*spec.Channels {
			t.Fatalf("%+v produced %d bytes", spec, img.NumBytes())
		}
		if img.Dtype() != tensor.UInt8 {
			t.Fatalf("dtype = %v", img.Dtype())
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		l := Label(1, i, 10)
		v, _ := l.Item()
		if v < 0 || v > 9 {
			t.Fatalf("label %v out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Fatalf("labels poorly distributed: %d distinct", len(seen))
	}
	a, _ := Label(1, 5, 10).Item()
	b, _ := Label(1, 5, 10).Item()
	if a != b {
		t.Fatal("labels must be deterministic")
	}
}

func TestCaptions(t *testing.T) {
	a := Caption(1, 7)
	b := Caption(1, 7)
	c := Caption(1, 8)
	if a != b {
		t.Fatal("captions must be deterministic")
	}
	if a == c {
		t.Fatal("captions should vary across indices")
	}
	if len(a) < 10 {
		t.Fatalf("caption too short: %q", a)
	}
}

func TestBBoxesInsideImage(t *testing.T) {
	boxes := BBoxes(1, 0, 5, 100, 200)
	if !reflect.DeepEqual(boxes.Shape(), []int{5, 4}) {
		t.Fatalf("shape = %v", boxes.Shape())
	}
	vals := boxes.Float64s()
	for k := 0; k < 5; k++ {
		x, y, w, h := vals[k*4], vals[k*4+1], vals[k*4+2], vals[k*4+3]
		if x < 0 || y < 0 || x+w > 200 || y+h > 100 {
			t.Fatalf("box %d [%v %v %v %v] outside 100x200 image", k, x, y, w, h)
		}
	}
}
