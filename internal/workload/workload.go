// Package workload generates the synthetic datasets standing in for the
// paper's evaluation data (§6): FFHQ-like 1024x1024x3 raw images (Fig 6),
// 250x250x3 JPEG-compressible images (Figs 7-8), ImageNet-like classified
// images (Fig 9), and LAION-like image+caption pairs (Fig 10).
//
// Images are deterministic functions of (seed, index) and combine smooth
// gradients, blobs and mild noise so JPEG achieves realistic compression
// ratios — pure noise would make every format look identical, pure flat
// color would flatter compressed formats.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ImageSpec describes a synthetic image family.
type ImageSpec struct {
	Height, Width, Channels int
	// Seed makes the family deterministic.
	Seed int64
}

// FFHQLike matches the Fig 6 corpus: 1024x1024x3 uncompressed, ~3MB each.
func FFHQLike() ImageSpec { return ImageSpec{Height: 1024, Width: 1024, Channels: 3, Seed: 6} }

// Small250 matches the Fig 7/8 corpus: 250x250x3 JPEG-compressed images.
func Small250() ImageSpec { return ImageSpec{Height: 250, Width: 250, Channels: 3, Seed: 7} }

// ImageNetLike matches the Fig 9 corpus: 224x224x3 classified images.
func ImageNetLike() ImageSpec { return ImageSpec{Height: 224, Width: 224, Channels: 3, Seed: 9} }

// LAIONLike matches the Fig 10 corpus: 256x256x3 images paired with text.
func LAIONLike() ImageSpec { return ImageSpec{Height: 256, Width: 256, Channels: 3, Seed: 10} }

// Image deterministically synthesizes image i of the family as an HWC
// uint8 array.
func (s ImageSpec) Image(i int) *tensor.NDArray {
	rng := rand.New(rand.NewSource(s.Seed*1_000_003 + int64(i)))
	h, w, c := s.Height, s.Width, s.Channels
	pix := make([]byte, h*w*c)

	// Per-image gradient orientation and palette.
	gx := rng.Float64()*2 - 1
	gy := rng.Float64()*2 - 1
	base := [3]float64{rng.Float64() * 255, rng.Float64() * 255, rng.Float64() * 255}

	// A few random soft blobs (faces/objects stand-ins).
	type blob struct{ cx, cy, r, amp float64 }
	blobs := make([]blob, 3+rng.Intn(4))
	for b := range blobs {
		blobs[b] = blob{
			cx:  rng.Float64() * float64(w),
			cy:  rng.Float64() * float64(h),
			r:   (0.05 + rng.Float64()*0.2) * float64(minInt(h, w)),
			amp: rng.Float64()*160 - 80,
		}
	}
	noise := rng.Float64() * 6

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := gx*float64(x)/float64(w) + gy*float64(y)/float64(h)
			v := 60 * g
			for _, b := range blobs {
				dx := (float64(x) - b.cx) / b.r
				dy := (float64(y) - b.cy) / b.r
				d2 := dx*dx + dy*dy
				if d2 < 9 {
					v += b.amp * math.Exp(-d2)
				}
			}
			n := (rng.Float64()*2 - 1) * noise
			for ch := 0; ch < c; ch++ {
				f := base[ch%3] + v + n
				if f < 0 {
					f = 0
				}
				if f > 255 {
					f = 255
				}
				pix[(y*w+x)*c+ch] = byte(f)
			}
		}
	}
	arr, _ := tensor.FromBytes(tensor.UInt8, shapeOf(h, w, c), pix)
	return arr
}

func shapeOf(h, w, c int) []int {
	if c == 1 {
		return []int{h, w}
	}
	return []int{h, w, c}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Label deterministically assigns image i one of numClasses labels.
func Label(seed int64, i, numClasses int) *tensor.NDArray {
	rng := rand.New(rand.NewSource(seed*7_368_787 + int64(i)))
	return tensor.Scalar(tensor.Int32, float64(rng.Intn(numClasses)))
}

// captionNouns/captionAdjectives feed the LAION-like caption generator.
var (
	captionAdjectives = []string{"vivid", "serene", "ancient", "bustling", "quiet", "neon", "foggy", "golden", "crimson", "vast"}
	captionNouns      = []string{"harbor", "mountain", "market", "forest", "skyline", "desert", "garden", "bridge", "canyon", "library"}
	captionVerbs      = []string{"at dawn", "after rain", "in winter", "under stars", "at dusk", "in spring"}
)

// Caption deterministically generates a LAION-like alt-text caption.
func Caption(seed int64, i int) string {
	rng := rand.New(rand.NewSource(seed*104_729 + int64(i)))
	return fmt.Sprintf("a %s %s %s, photo %d",
		captionAdjectives[rng.Intn(len(captionAdjectives))],
		captionNouns[rng.Intn(len(captionNouns))],
		captionVerbs[rng.Intn(len(captionVerbs))],
		i)
}

// BBoxes deterministically generates n detection boxes [x, y, w, h] inside
// an image of the given size.
func BBoxes(seed int64, i, n, height, width int) *tensor.NDArray {
	rng := rand.New(rand.NewSource(seed*15_485_863 + int64(i)))
	vals := make([]float64, 0, n*4)
	for k := 0; k < n; k++ {
		w := 8 + rng.Float64()*float64(width)/2
		h := 8 + rng.Float64()*float64(height)/2
		x := rng.Float64() * (float64(width) - w)
		y := rng.Float64() * (float64(height) - h)
		vals = append(vals, x, y, w, h)
	}
	arr, _ := tensor.FromFloat64s(tensor.Float32, []int{n, 4}, vals)
	return arr
}
