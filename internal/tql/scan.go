package tql

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/storage"
)

// Options tunes query execution. The zero value picks defaults.
type Options struct {
	// Workers bounds the parallel scan width used by WHERE evaluation and
	// by sort/group/arrange/sample key evaluation. Zero or negative uses
	// runtime.GOMAXPROCS(0); 1 forces a serial scan. Results are identical
	// for every worker count.
	Workers int
	// DisablePushdown routes shape-only filters through the data-touching
	// evaluator and resolves SHAPE/NDIM/LEN/SIZE from decoded samples
	// instead of the shape encoder. Benchmarks and tests use it to measure
	// (and cross-check) what the shape-encoder pushdown saves.
	DisablePushdown bool
	// PerPartitionPrefetch reverts to the legacy prefetch shape: each worker
	// hands the storage planner only the chunks of the partition it is about
	// to walk, so chunks that are near-adjacent in the keyspace but owned by
	// different workers never share a coalesced origin request. Kept as the
	// A/B baseline for the cross-partition strip scheduler (the default).
	PerPartitionPrefetch bool
	// StripWidth bounds how many chunks the strip scheduler hands to the
	// fetch planner per strip. Zero or negative uses DefaultStripWidth.
	StripWidth int
	// Stats, when non-nil, accumulates prefetch observability counters for
	// the query (planned/claimed/skipped chunks, failed rounds, strips
	// issued). Safe to share across queries; counters only ever add.
	Stats *ScanStats
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultStripWidth is the chunk count per prefetch strip. At the 8–16MB
// chunk band a strip is ~128–256MB of lookahead split across a handful of
// coalesced ranged requests — deep enough to keep 16 workers fed, shallow
// enough that shedding one strip loses seconds, not the scan.
const DefaultStripWidth = 16

func (o Options) stripWidth() int {
	if o.StripWidth > 0 {
		return o.StripWidth
	}
	return DefaultStripWidth
}

// ScanStats counts what the scan's prefetch machinery actually did, so
// degraded prefetch (shed batches, unclaimable chunks) is visible instead of
// silent. All methods are safe for concurrent use and nil receivers.
type ScanStats struct {
	planned atomic.Int64
	claimed atomic.Int64
	skipped atomic.Int64
	failed  atomic.Int64
	strips  atomic.Int64
}

// record books one prefetch round: planned chunk ids handed to the planner,
// claimed ids accepted into the cache's singleflight layer, and the round's
// error if any. The planned−claimed remainder (already cached, in flight, or
// still write-buffered) counts as skipped.
func (s *ScanStats) record(planned, claimed int, err error) {
	if s == nil {
		return
	}
	s.planned.Add(int64(planned))
	s.claimed.Add(int64(claimed))
	if skipped := planned - claimed; skipped > 0 {
		s.skipped.Add(int64(skipped))
	}
	if err != nil {
		s.failed.Add(1)
	}
}

func (s *ScanStats) recordStrip() {
	if s != nil {
		s.strips.Add(1)
	}
}

// PrefetchPlanned is the total chunk ids handed to the fetch planner.
func (s *ScanStats) PrefetchPlanned() int64 {
	if s == nil {
		return 0
	}
	return s.planned.Load()
}

// PrefetchClaimed is how many of those the cache claimed for background
// fetch. The rest were already resident, in flight, or not yet sealed.
func (s *ScanStats) PrefetchClaimed() int64 {
	if s == nil {
		return 0
	}
	return s.claimed.Load()
}

// PrefetchSkipped is planned minus claimed: chunks the planner declined
// because prefetching them would be redundant.
func (s *ScanStats) PrefetchSkipped() int64 {
	if s == nil {
		return 0
	}
	return s.skipped.Load()
}

// PrefetchFailed counts prefetch rounds that returned an error. Readers fall
// back to demand fetches, so nonzero means degraded, not lost. Chunks whose
// coalesced round trip was shed after claiming surface separately in
// storage.Stats.PrefetchShed.
func (s *ScanStats) PrefetchFailed() int64 {
	if s == nil {
		return 0
	}
	return s.failed.Load()
}

// PrefetchStrips counts strips issued by the cross-partition scheduler;
// zero under Options.PerPartitionPrefetch.
func (s *ScanStats) PrefetchStrips() int64 {
	if s == nil {
		return 0
	}
	return s.strips.Load()
}

// String renders the counters in the style of Explain's stage notes.
func (s *ScanStats) String() string {
	return fmt.Sprintf("prefetch: %d planned, %d claimed, %d skipped, %d failed rounds, %d strips",
		s.PrefetchPlanned(), s.PrefetchClaimed(), s.PrefetchSkipped(), s.PrefetchFailed(), s.PrefetchStrips())
}

// oversubscribe controls how many partitions each worker gets on average:
// more partitions smooth out skew in per-chunk cost (compressed chunks,
// cache hits vs misses) at slightly more scheduling overhead.
const oversubscribe = 4

// span is a half-open range [lo, hi) of positions in a row slice.
type span struct{ lo, hi int }

// scanner evaluates expressions over many rows through a bounded worker
// pool, partitioning work along chunk boundaries.
type scanner struct {
	ds      *core.Dataset
	workers int
	// rawShapes bypasses the shape encoder (Options.DisablePushdown).
	rawShapes bool
	// perPartition selects the legacy one-prefetch-per-partition shape
	// (Options.PerPartitionPrefetch) over the cross-partition strips.
	perPartition bool
	stripWidth   int
	stats        *ScanStats
}

// splitConjuncts flattens the AND tree of a filter left-to-right and
// returns the longest leading run of shape-only conjuncts — answerable from
// the shape encoder with zero chunk IO — plus the remainder in original
// order. Only that prefix is hoisted into the prefilter: evaluating it
// first, and the remainder only on its survivors, reproduces the per-row
// short-circuit evaluation order exactly. Hoisting a shape conjunct past an
// earlier data conjunct would evaluate it on rows where short-circuiting
// used to guard it (e.g. an out-of-range SHAPE subscript behind a data
// predicate), turning working queries into errors.
func splitConjuncts(x Expr) (shape, data []Expr) {
	conj := flattenAnd(x)
	i := 0
	for i < len(conj) && shapeOnly(conj[i]) {
		i++
	}
	return conj[:i], conj[i:]
}

// flattenAnd lists the conjuncts of an AND tree in evaluation order.
func flattenAnd(x Expr) []Expr {
	if b, ok := x.(Binary); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{x}
}

// andAll rebuilds a conjunction from its conjuncts; nil when empty.
func andAll(xs []Expr) Expr {
	if len(xs) == 0 {
		return nil
	}
	out := xs[0]
	for _, x := range xs[1:] {
		out = Binary{Op: "AND", L: out, R: x}
	}
	return out
}

// filter returns the subset of rows satisfying pred, in input order. The
// merge is positional, so the result is identical for any worker count.
func (sc *scanner) filter(ctx context.Context, rows []uint64, pred Expr) ([]uint64, error) {
	keep := make([]bool, len(rows))
	err := sc.eval(ctx, rows, pred, "WHERE", func(pos int, _ uint64, v Value) error {
		keep[pos] = v.IsTruthy()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := rows[:0]
	for pos, ok := range keep {
		if ok {
			out = append(out, rows[pos])
		}
	}
	return out, nil
}

// keyed is one evaluated sort/group/arrange key.
type keyed struct {
	isStr bool
	num   float64
	str   string
}

func (a keyed) less(b keyed) bool {
	if a.isStr != b.isStr {
		return !a.isStr // numbers sort before strings
	}
	if a.isStr {
		return a.str < b.str
	}
	return a.num < b.num
}

// keys batch-evaluates a key expression for every row, returning a slice
// parallel to rows. Duplicate row indices (possible after SAMPLE BY) get
// their own entries, unlike a map keyed by row index, and comparisons
// during sorting index the slice directly with no hashing.
func (sc *scanner) keys(ctx context.Context, rows []uint64, key Expr, stage string) ([]keyed, error) {
	keys := make([]keyed, len(rows))
	err := sc.eval(ctx, rows, key, stage, func(pos int, _ uint64, v Value) error {
		isStr, num, str, err := v.sortKey()
		if err != nil {
			return err
		}
		keys[pos] = keyed{isStr, num, str}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// eval evaluates x once per row across the worker pool. Partitions follow
// the chunk boundaries of the first tensor x references; each worker reuses
// one environment (and its per-tensor ScanReaders), so a partition fetches
// and decodes every chunk it covers at most once, and concurrent fetches of
// a chunk shared between workers coalesce in the provider chain. sink runs
// on worker goroutines with disjoint positions: it may write into shared
// slices at pos without locking, but must not touch other positions. Errors
// are wrapped with the stage name and failing row.
func (sc *scanner) eval(ctx context.Context, rows []uint64, x Expr, stage string, sink func(pos int, row uint64, v Value) error) error {
	if len(rows) == 0 {
		return nil
	}
	spans := sc.partition(x, rows)
	workers := sc.workers
	if workers > len(spans) {
		workers = len(spans)
	}
	// Prefetch: before a worker walks a partition, the chunks the scan will
	// touch are handed to the storage layer's fetch planner, so near-adjacent
	// chunk objects arrive in coalesced ranged origin requests instead of one
	// round trip each. The default shape is the cross-partition strip
	// scheduler: strips of fixed width cut across partition boundaries, so
	// chunks owned by different workers still share a coalesced request (and
	// the tail of each strip is lookahead for whichever worker claims the
	// next partition). Options.PerPartitionPrefetch reverts to handing each
	// partition's chunks over separately. Shape-only expressions are
	// excluded: they resolve from the shape encoder (pushdown's
	// zero-chunk-IO guarantee), so prefetching chunks for them would be pure
	// waste. Errors are counted into ScanStats, never fatal — the per-row
	// read path re-fetches and reports with row context.
	driver := scanDriver(sc.ds, x)
	var driverChunks []core.ChunkSpan
	if driver != nil && ascending(rows) && (sc.rawShapes || !shapeOnly(x)) {
		driverChunks = driver.ChunkSpans()
	}
	var strips *stripScheduler
	if len(driverChunks) > 0 && !sc.perPartition {
		strips = newStripScheduler(driver, driverChunks, rows, spans, sc.stripWidth, sc.stats)
	}
	prefetchSpan := func(ctx context.Context, i int) {
		if strips != nil {
			strips.ensure(ctx, i)
			return
		}
		if len(driverChunks) == 0 {
			return
		}
		sp := spans[i]
		if ids := spanChunkIDs(driverChunks, rows[sp.lo:sp.hi]); len(ids) > 0 {
			claimed, err := driver.PrefetchChunks(ctx, ids, storage.PlanOptions{})
			sc.stats.record(len(ids), claimed, err)
		}
	}
	evalSpan := func(ctx context.Context, e *env, i int) error {
		prefetchSpan(ctx, i)
		sp := spans[i]
		for pos := sp.lo; pos < sp.hi; pos++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			e.reset(rows[pos])
			v, err := evalExpr(e, x)
			if err == nil {
				err = sink(pos, rows[pos], v)
			}
			if err != nil {
				return fmt.Errorf("tql: %s at row %d: %w", stage, rows[pos], err)
			}
		}
		return nil
	}
	if workers <= 1 {
		e := sc.newWorkerEnv(ctx)
		for i := range spans {
			if err := evalSpan(ctx, e, i); err != nil {
				return err
			}
		}
		return nil
	}
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		nextSpan atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := sc.newWorkerEnv(scanCtx)
			for {
				i := int(nextSpan.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				if err := evalSpan(scanCtx, e, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

func (sc *scanner) newWorkerEnv(ctx context.Context) *env {
	e := newScanEnv(ctx, sc.ds)
	e.rawShapes = sc.rawShapes
	return e
}

// stripScheduler issues prefetch strips over the scan's global chunk order
// rather than per partition. Per-partition prefetch caps every coalesced
// batch at one partition's chunks, so two chunks that are adjacent in the
// keyspace but sit either side of a partition boundary always cost two
// origin round trips; a strip ignores the boundaries and packs them into
// one ranged request. Because strips are fixed-width, issuing enough of
// them to cover one partition usually reaches into the next — free
// lookahead for whichever worker claims it.
type stripScheduler struct {
	driver *core.Tensor
	// ids is every distinct chunk id the scan will visit, in visit order;
	// spanEnd[i] is the exclusive end of partition i's chunks within ids.
	ids     []uint64
	spanEnd []int
	width   int
	stats   *ScanStats

	mu   sync.Mutex
	next int // first index in ids not yet handed to the fetch planner
}

func newStripScheduler(driver *core.Tensor, chunks []core.ChunkSpan, rows []uint64, spans []span, width int, stats *ScanStats) *stripScheduler {
	s := &stripScheduler{
		driver:  driver,
		spanEnd: make([]int, len(spans)),
		width:   width,
		stats:   stats,
	}
	ci, si := 0, 0
	for pos, row := range rows {
		for si < len(spans) && pos >= spans[si].hi {
			s.spanEnd[si] = len(s.ids)
			si++
		}
		for ci < len(chunks) && row > chunks[ci].Last {
			ci++
		}
		if ci >= len(chunks) {
			break
		}
		if row < chunks[ci].First {
			continue
		}
		if n := len(s.ids); n == 0 || s.ids[n-1] != chunks[ci].ChunkID {
			s.ids = append(s.ids, chunks[ci].ChunkID)
		}
	}
	for ; si < len(spans); si++ {
		s.spanEnd[si] = len(s.ids)
	}
	return s
}

// ensure hands out strips until every chunk of partition spanIdx has been
// given to the fetch planner. Workers claim partitions in ascending order,
// so the common case is a no-op (a previous strip already covered this
// partition) or one strip; a worker that skips ahead issues the strips for
// everything in between, which those slower workers then find in flight.
func (s *stripScheduler) ensure(ctx context.Context, spanIdx int) {
	target := s.spanEnd[spanIdx]
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.next < target {
		hi := s.next + s.width
		if hi > len(s.ids) {
			hi = len(s.ids)
		}
		strip := s.ids[s.next:hi]
		s.next = hi
		// PrefetchChunks is asynchronous — it claims keys and returns while
		// the coalesced fetches run in the background — so holding mu here
		// serialises planning, not IO.
		claimed, err := s.driver.PrefetchChunks(ctx, strip, storage.PlanOptions{})
		s.stats.record(len(strip), claimed, err)
		s.stats.recordStrip()
	}
}

// partition splits the positions of rows into contiguous partitions aligned
// with the chunk boundaries of the first tensor x references. Row lists that
// are not ascending (after ORDER BY, ARRANGE BY, ...) and expressions that
// touch no tensor fall back to an even split.
func (sc *scanner) partition(x Expr, rows []uint64) []span {
	maxParts := sc.workers * oversubscribe
	if maxParts > len(rows) {
		maxParts = len(rows)
	}
	if maxParts <= 1 {
		return []span{{0, len(rows)}}
	}
	if spans := sc.chunkAlignedSpans(x, rows, maxParts); spans != nil {
		return spans
	}
	return evenSpans(len(rows), maxParts)
}

func evenSpans(n, parts int) []span {
	out := make([]span, 0, parts)
	for p := 0; p < parts; p++ {
		lo, hi := n*p/parts, n*(p+1)/parts
		if lo < hi {
			out = append(out, span{lo, hi})
		}
	}
	return out
}

// chunkAlignedSpans cuts the row positions at the driver tensor's chunk
// boundaries, merging adjacent chunks until at most maxParts partitions
// remain. Cutting only on boundaries keeps every chunk inside exactly one
// partition, so no chunk is decoded by two workers.
func (sc *scanner) chunkAlignedSpans(x Expr, rows []uint64, maxParts int) []span {
	driver := scanDriver(sc.ds, x)
	if driver == nil {
		return nil
	}
	chunks := driver.ChunkSpans()
	if len(chunks) == 0 || !ascending(rows) {
		return nil
	}
	minRows := (len(rows) + maxParts - 1) / maxParts
	var spans []span
	start, ci := 0, 0
	prevChunk := -1
	for pos, row := range rows {
		for ci < len(chunks) && row > chunks[ci].Last {
			ci++
		}
		if prevChunk >= 0 && ci != prevChunk && pos-start >= minRows {
			spans = append(spans, span{start, pos})
			start = pos
		}
		prevChunk = ci
	}
	if start < len(rows) {
		spans = append(spans, span{start, len(rows)})
	}
	return spans
}

// scanDriver picks the tensor whose chunk layout drives partitioning: the
// first tensor reference in the expression.
func scanDriver(ds *core.Dataset, x Expr) *core.Tensor {
	var found *core.Tensor
	var walk func(Expr) bool
	walk = func(x Expr) bool {
		switch n := x.(type) {
		case Ident:
			if t := ds.Tensor(string(n)); t != nil {
				found = t
				return true
			}
		case Unary:
			return walk(n.X)
		case Binary:
			return walk(n.L) || walk(n.R)
		case ArrayLit:
			for _, el := range n {
				if walk(el) {
					return true
				}
			}
		case Call:
			for _, a := range n.Args {
				if walk(a) {
					return true
				}
			}
		case Index:
			if walk(n.X) {
				return true
			}
			for _, s := range n.Specs {
				for _, e := range []Expr{s.Point, s.Lo, s.Hi} {
					if e != nil && walk(e) {
						return true
					}
				}
			}
		}
		return false
	}
	if x != nil {
		walk(x)
	}
	return found
}

// spanChunkIDs lists the distinct chunk ids covering rows (which must be
// ascending), in visit order.
func spanChunkIDs(chunks []core.ChunkSpan, rows []uint64) []uint64 {
	var ids []uint64
	ci := 0
	for _, row := range rows {
		for ci < len(chunks) && row > chunks[ci].Last {
			ci++
		}
		if ci >= len(chunks) {
			break
		}
		if row < chunks[ci].First {
			continue
		}
		if n := len(ids); n == 0 || ids[n-1] != chunks[ci].ChunkID {
			ids = append(ids, chunks[ci].ChunkID)
		}
	}
	return ids
}

func ascending(rows []uint64) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i] < rows[i-1] {
			return false
		}
	}
	return true
}
