package tql

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// TestVectorSearchViaTQL demonstrates embedding similarity search — §7.3
// lists vector search as future work for the storage layout, but TQL's
// COSINE_SIMILARITY + ORDER BY + LIMIT already express brute-force k-NN
// over an embedding tensor.
func TestVectorSearchViaTQL(t *testing.T) {
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "vectors")
	if err != nil {
		t.Fatal(err)
	}
	emb, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "embedding", Htype: "embedding",
		Bounds: chunk.Bounds{Min: 256, Target: 512, Max: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	captions, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "caption", Htype: "text"})

	// 50 unit-ish vectors in 8 dims; vector i points mostly along axis
	// i%8 with noise.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		vals := make([]float64, 8)
		for d := range vals {
			vals[d] = rng.Float64() * 0.1
		}
		vals[i%8] = 1
		v, _ := tensor.FromFloat64s(tensor.Float32, []int{8}, vals)
		if err := emb.Append(ctx, v); err != nil {
			t.Fatal(err)
		}
		captions.Append(ctx, tensor.FromString(fmt.Sprintf("doc-%d-axis-%d", i, i%8)))
	}

	// Query: nearest neighbors of the axis-3 direction.
	q := `SELECT caption, COSINE_SIMILARITY(embedding, [0,0,0,1,0,0,0,0]) as score
	      FROM vectors
	      ORDER BY COSINE_SIMILARITY(embedding, [0,0,0,1,0,0,0,0]) DESC
	      LIMIT 5`
	v, err := Run(ctx, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 {
		t.Fatalf("top-k = %d", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		cap_, err := v.At(ctx, i, "caption")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(cap_.AsString(), "axis-3") {
			t.Fatalf("neighbor %d = %q, want an axis-3 doc", i, cap_.AsString())
		}
		score, err := v.At(ctx, i, "score")
		if err != nil {
			t.Fatal(err)
		}
		s, _ := score.Item()
		if s < 0.9 {
			t.Fatalf("neighbor %d score = %v", i, s)
		}
	}
}

// TestParserNeverPanics fuzzes the parser with random byte strings and
// random token recombinations: it must always return (query, nil) or
// (nil, error), never panic.
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"SELECT", "FROM", "WHERE", "ORDER", "BY", "ARRANGE", "GROUP",
		"LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "VERSION", "SAMPLE",
		"images", "labels", "*", ",", "(", ")", "[", "]", ":", "==", "<",
		">", "+", "-", "/", "%", "1", "2.5", `"str"`, "IOU", "MEAN",
	}
	f := func(seed int64, n uint8, raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked: %v", r)
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < int(n)%30; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		Parse(sb.String())
		Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerEdgeCases covers tokenizer corner inputs.
func TestLexerEdgeCases(t *testing.T) {
	cases := map[string]bool{ // src -> should lex cleanly
		`SELECT "escaped \" quote" FROM x`: true,
		"SELECT 'single quotes' FROM x":    true,
		"select lower_case from x":         true,
		"SELECT x\n\tFROM\r\n y":           true,
		"SELECT @":                         false,
		"SELECT #":                         false,
		"SELECT `tick`":                    false,
	}
	for src, ok := range cases {
		_, err := lex(src)
		if ok && err != nil {
			t.Errorf("lex(%q) = %v, want ok", src, err)
		}
		if !ok && err == nil {
			t.Errorf("lex(%q) should error", src)
		}
	}
}

// TestCaseInsensitiveKeywords verifies keyword handling.
func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select labels from ds where labels == 1 order by labels desc limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "ds" || q.Where == nil || !q.OrderDesc || q.Limit != 3 {
		t.Fatalf("lower-case query parsed wrong: %+v", q)
	}
}
