package tql

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/view"
)

// Plan is the compiled logical plan of a query: an ordered list of stages
// the scheduler executes (§4.4: "The query plan generates a computational
// graph of tensor operations. Then the scheduler executes the query
// graph").
type Plan struct {
	Query  *Query
	stages []string
}

// Explain renders the plan stages, one per line.
func (p *Plan) Explain() string { return strings.Join(p.stages, "\n") }

// Compile builds the logical plan for a parsed query.
func Compile(q *Query) (*Plan, error) {
	p := &Plan{Query: q}
	src := q.From
	if src == "" {
		src = "<bound dataset>"
	}
	if q.Version != "" {
		p.stages = append(p.stages, fmt.Sprintf("scan %s @ version %s", src, q.Version))
	} else {
		p.stages = append(p.stages, "scan "+src)
	}
	if q.Where != nil {
		pushdown := ""
		if shapeOnly(q.Where) {
			pushdown = " [shape-encoder pushdown: no chunk IO]"
		}
		p.stages = append(p.stages, "filter "+q.Where.String()+pushdown)
	}
	if q.OrderBy != nil {
		dir := "asc"
		if q.OrderDesc {
			dir = "desc"
		}
		p.stages = append(p.stages, fmt.Sprintf("order by %s %s", q.OrderBy, dir))
	}
	if q.GroupBy != nil {
		p.stages = append(p.stages, "group by "+q.GroupBy.String())
	}
	if q.ArrangeBy != nil {
		p.stages = append(p.stages, "arrange by "+q.ArrangeBy.String()+" [round-robin class balancing]")
	}
	if q.SampleBy != nil {
		p.stages = append(p.stages, "weighted sample by "+q.SampleBy.String())
	}
	if q.Offset > 0 || q.Limit >= 0 {
		p.stages = append(p.stages, fmt.Sprintf("limit %d offset %d", q.Limit, q.Offset))
	}
	if q.Star {
		p.stages = append(p.stages, "project *")
	} else {
		parts := make([]string, len(q.Selectors))
		for i, s := range q.Selectors {
			parts[i] = s.String()
		}
		p.stages = append(p.stages, "project "+strings.Join(parts, ", "))
	}
	return p, nil
}

// shapeOnly reports whether an expression touches sample data only through
// SHAPE/NDIM/LEN/SIZE of bare tensor references, meaning the filter can run
// entirely off the shape encoder.
func shapeOnly(x Expr) bool {
	switch n := x.(type) {
	case NumberLit, StringLit, BoolLit:
		return true
	case Ident:
		return false // raw tensor reference loads data
	case Unary:
		return shapeOnly(n.X)
	case Binary:
		return shapeOnly(n.L) && shapeOnly(n.R)
	case ArrayLit:
		for _, el := range n {
			if !shapeOnly(el) {
				return false
			}
		}
		return true
	case Call:
		switch n.Name {
		case "SHAPE", "NDIM", "LEN", "SIZE":
			if len(n.Args) == 1 {
				if _, ok := n.Args[0].(Ident); ok {
					return true
				}
			}
			return false
		case "ROW":
			return true
		default:
			return false
		}
	case Index:
		return shapeOnly(n.X)
	}
	return false
}

// Run parses, compiles and executes a query against a dataset, returning
// the result as a view.
func Run(ctx context.Context, ds *core.Dataset, src string) (*view.View, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, ds, q)
}

// knownFunctions is the builtin library (§4.4).
var knownFunctions = map[string]bool{
	"SHAPE": true, "NDIM": true, "LEN": true, "SIZE": true, "ROW": true,
	"TEXT": true, "MEAN": true, "SUM": true, "MIN": true, "MAX": true,
	"L2": true, "ANY": true, "ALL": true, "ABS": true, "SQRT": true,
	"CLIP": true, "CONTAINS": true, "DOT": true, "COSINE_SIMILARITY": true,
	"IOU": true, "NORMALIZE": true,
}

// validateExpr rejects unknown functions before execution.
func validateExpr(x Expr) error {
	switch n := x.(type) {
	case Unary:
		return validateExpr(n.X)
	case Binary:
		if err := validateExpr(n.L); err != nil {
			return err
		}
		return validateExpr(n.R)
	case ArrayLit:
		for _, el := range n {
			if err := validateExpr(el); err != nil {
				return err
			}
		}
	case Call:
		if !knownFunctions[n.Name] {
			return fmt.Errorf("tql: unknown function %q", n.Name)
		}
		for _, a := range n.Args {
			if err := validateExpr(a); err != nil {
				return err
			}
		}
	case Index:
		if err := validateExpr(n.X); err != nil {
			return err
		}
		for _, s := range n.Specs {
			for _, e := range []Expr{s.Point, s.Lo, s.Hi} {
				if e != nil {
					if err := validateExpr(e); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func validateQuery(q *Query) error {
	exprs := []Expr{q.Where, q.GroupBy, q.OrderBy, q.ArrangeBy, q.SampleBy}
	for _, sel := range q.Selectors {
		exprs = append(exprs, sel.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := validateExpr(e); err != nil {
			return err
		}
	}
	return nil
}

// Execute runs a parsed query against a dataset.
func Execute(ctx context.Context, ds *core.Dataset, q *Query) (*view.View, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if q.Version != "" {
		var err error
		ds, err = ds.ReadAtVersion(ctx, q.Version)
		if err != nil {
			return nil, err
		}
	}
	n := ds.NumRows()
	rows := make([]uint64, 0, n)
	// Filter.
	for i := uint64(0); i < n; i++ {
		if q.Where != nil {
			v, err := evalExpr(newEnv(ctx, ds, i), q.Where)
			if err != nil {
				return nil, fmt.Errorf("tql: WHERE at row %d: %w", i, err)
			}
			if !v.IsTruthy() {
				continue
			}
		}
		rows = append(rows, i)
	}
	// Order.
	if q.OrderBy != nil {
		if err := sortRows(ctx, ds, rows, q.OrderBy, q.OrderDesc); err != nil {
			return nil, err
		}
	}
	// Group (stable, so ORDER BY survives within groups).
	if q.GroupBy != nil {
		if err := sortRows(ctx, ds, rows, q.GroupBy, false); err != nil {
			return nil, err
		}
	}
	// Arrange: round-robin interleave across key groups.
	if q.ArrangeBy != nil {
		var err error
		rows, err = arrangeRows(ctx, ds, rows, q.ArrangeBy)
		if err != nil {
			return nil, err
		}
	}
	// Weighted sampling.
	if q.SampleBy != nil {
		var err error
		rows, err = sampleRows(ctx, ds, rows, q)
		if err != nil {
			return nil, err
		}
	}
	// Offset / limit.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	// Projection.
	columns, err := buildColumns(ds, q)
	if err != nil {
		return nil, err
	}
	return view.New(ds, rows, columns), nil
}

// rowKey evaluates a sort key for one row.
func rowKey(ctx context.Context, ds *core.Dataset, row uint64, x Expr) (isStr bool, num float64, str string, err error) {
	v, err := evalExpr(newEnv(ctx, ds, row), x)
	if err != nil {
		return false, 0, "", err
	}
	return v.sortKey()
}

func sortRows(ctx context.Context, ds *core.Dataset, rows []uint64, key Expr, desc bool) error {
	type keyed struct {
		isStr bool
		num   float64
		str   string
	}
	keys := make(map[uint64]keyed, len(rows))
	for _, r := range rows {
		isStr, num, str, err := rowKey(ctx, ds, r, key)
		if err != nil {
			return fmt.Errorf("tql: sort key at row %d: %w", r, err)
		}
		keys[r] = keyed{isStr, num, str}
	}
	less := func(a, b keyed) bool {
		if a.isStr != b.isStr {
			return !a.isStr // numbers sort before strings
		}
		if a.isStr {
			return a.str < b.str
		}
		return a.num < b.num
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := keys[rows[i]], keys[rows[j]]
		if desc {
			return less(b, a)
		}
		return less(a, b)
	})
	return nil
}

// arrangeRows groups rows by key (first-appearance group order) and
// interleaves the groups round-robin, producing a class-balanced stream.
func arrangeRows(ctx context.Context, ds *core.Dataset, rows []uint64, key Expr) ([]uint64, error) {
	type group struct {
		rows []uint64
	}
	order := []string{}
	groups := map[string]*group{}
	for _, r := range rows {
		isStr, num, str, err := rowKey(ctx, ds, r, key)
		if err != nil {
			return nil, fmt.Errorf("tql: arrange key at row %d: %w", r, err)
		}
		k := str
		if !isStr {
			k = fmt.Sprintf("n:%g", num)
		}
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	out := make([]uint64, 0, len(rows))
	for len(out) < len(rows) {
		progressed := false
		for _, k := range order {
			g := groups[k]
			if len(g.rows) == 0 {
				continue
			}
			out = append(out, g.rows[0])
			g.rows = g.rows[1:]
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out, nil
}

// sampleRows draws a weighted sample without replacement using exponential
// keys (Efraimidis-Spirakis), deterministic per query text so results are
// reproducible across runs.
func sampleRows(ctx context.Context, ds *core.Dataset, rows []uint64, q *Query) ([]uint64, error) {
	h := fnv.New64a()
	h.Write([]byte(q.String()))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	type keyed struct {
		row uint64
		key float64
	}
	keys := make([]keyed, 0, len(rows))
	for _, r := range rows {
		v, err := evalExpr(newEnv(ctx, ds, r), q.SampleBy)
		if err != nil {
			return nil, fmt.Errorf("tql: sample weight at row %d: %w", r, err)
		}
		w, err := v.AsNumber()
		if err != nil {
			return nil, err
		}
		if w <= 0 {
			continue
		}
		keys = append(keys, keyed{row: r, key: -math.Log(rng.Float64()) / w})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = k.row
	}
	return out, nil
}

// buildColumns converts selectors into view columns. A bare tensor
// reference becomes an identity column (streamed raw, decode deferred to
// the loader); anything else becomes a computed column evaluated per row.
func buildColumns(ds *core.Dataset, q *Query) ([]view.Column, error) {
	if q.Star {
		return nil, nil // view.New expands nil to all visible tensors
	}
	seen := map[string]bool{}
	var out []view.Column
	for i, sel := range q.Selectors {
		name := sel.Alias
		if id, ok := sel.Expr.(Ident); ok {
			if ds.Tensor(string(id)) == nil {
				return nil, fmt.Errorf("tql: unknown tensor %q", id)
			}
			if name == "" {
				name = string(id)
			}
			if seen[name] {
				return nil, fmt.Errorf("tql: duplicate output column %q", name)
			}
			seen[name] = true
			out = append(out, view.Column{Name: name, Source: string(id)})
			continue
		}
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("tql: duplicate output column %q", name)
		}
		seen[name] = true
		expr := sel.Expr
		out = append(out, view.Column{
			Name: name,
			Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
				v, err := evalExpr(newEnv(ctx, ds, row), expr)
				if err != nil {
					return nil, err
				}
				return v.AsArray()
			},
		})
	}
	return out, nil
}
