package tql

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/view"
)

// Plan is the compiled logical plan of a query: an ordered list of stages
// the scheduler executes (§4.4: "The query plan generates a computational
// graph of tensor operations. Then the scheduler executes the query
// graph").
type Plan struct {
	Query  *Query
	stages []string
}

// Explain renders the plan stages, one per line.
func (p *Plan) Explain() string { return strings.Join(p.stages, "\n") }

// Compile builds the logical plan for a parsed query.
func Compile(q *Query) (*Plan, error) {
	p := &Plan{Query: q}
	src := q.From
	if src == "" {
		src = "<bound dataset>"
	}
	if q.Version != "" {
		p.stages = append(p.stages, fmt.Sprintf("scan %s @ version %s [chunk-partitioned]", src, q.Version))
	} else {
		p.stages = append(p.stages, "scan "+src+" [chunk-partitioned]")
	}
	if touchesChunkData(q) {
		p.stages = append(p.stages, "prefetch chunk strips [cross-partition coalesced origin fetch]")
	}
	if q.Where != nil {
		shapeConj, dataConj := splitConjuncts(q.Where)
		switch {
		case len(dataConj) == 0:
			p.stages = append(p.stages, "filter "+q.Where.String()+" [shape-encoder pushdown: no chunk IO]")
		case len(shapeConj) > 0:
			p.stages = append(p.stages, "prefilter "+andAll(shapeConj).String()+" [shape-encoder pushdown: no chunk IO]")
			p.stages = append(p.stages, "filter "+andAll(dataConj).String()+" [parallel chunk scan]")
		default:
			p.stages = append(p.stages, "filter "+q.Where.String()+" [parallel chunk scan]")
		}
	}
	if q.OrderBy != nil {
		dir := "asc"
		if q.OrderDesc {
			dir = "desc"
		}
		p.stages = append(p.stages, fmt.Sprintf("order by %s %s", q.OrderBy, dir))
	}
	if q.GroupBy != nil {
		p.stages = append(p.stages, "group by "+q.GroupBy.String())
	}
	if q.ArrangeBy != nil {
		p.stages = append(p.stages, "arrange by "+q.ArrangeBy.String()+" [round-robin class balancing]")
	}
	if q.SampleBy != nil {
		p.stages = append(p.stages, "weighted sample by "+q.SampleBy.String())
	}
	if q.Offset > 0 || q.Limit >= 0 {
		p.stages = append(p.stages, fmt.Sprintf("limit %d offset %d", q.Limit, q.Offset))
	}
	if q.Star {
		p.stages = append(p.stages, "project *")
	} else {
		parts := make([]string, len(q.Selectors))
		for i, s := range q.Selectors {
			parts[i] = s.String()
		}
		p.stages = append(p.stages, "project "+strings.Join(parts, ", "))
	}
	return p, nil
}

// touchesChunkData reports whether executing q will read sample data from
// chunks — the condition under which the scan engine prefetches chunk
// strips ahead of its workers. Shape-only filters stay answerable from the
// shape encoder alone, so a plan made purely of them gets no prefetch
// stage.
func touchesChunkData(q *Query) bool {
	for _, x := range []Expr{q.Where, q.OrderBy, q.GroupBy, q.ArrangeBy, q.SampleBy} {
		if x == nil {
			continue
		}
		if _, data := splitConjuncts(x); len(data) > 0 {
			return true
		}
	}
	return false
}

// shapeOnly reports whether an expression touches sample data only through
// SHAPE/NDIM/LEN/SIZE of bare tensor references, meaning the filter can run
// entirely off the shape encoder.
func shapeOnly(x Expr) bool {
	switch n := x.(type) {
	case NumberLit, StringLit, BoolLit:
		return true
	case Ident:
		return false // raw tensor reference loads data
	case Unary:
		return shapeOnly(n.X)
	case Binary:
		return shapeOnly(n.L) && shapeOnly(n.R)
	case ArrayLit:
		for _, el := range n {
			if !shapeOnly(el) {
				return false
			}
		}
		return true
	case Call:
		switch n.Name {
		case "SHAPE", "NDIM", "LEN", "SIZE":
			if len(n.Args) == 1 {
				if _, ok := n.Args[0].(Ident); ok {
					return true
				}
			}
			return false
		case "ROW":
			return true
		default:
			return false
		}
	case Index:
		if !shapeOnly(n.X) {
			return false
		}
		// Subscripts are expressions too: SHAPE(x)[MEAN(y)] loads data.
		for _, s := range n.Specs {
			for _, e := range []Expr{s.Point, s.Lo, s.Hi} {
				if e != nil && !shapeOnly(e) {
					return false
				}
			}
		}
		return true
	}
	return false
}

// Run parses, compiles and executes a query against a dataset, returning
// the result as a view.
func Run(ctx context.Context, ds *core.Dataset, src string) (*view.View, error) {
	return RunWith(ctx, ds, src, Options{})
}

// RunWith is Run with explicit execution options.
func RunWith(ctx context.Context, ds *core.Dataset, src string, opts Options) (*view.View, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecuteWith(ctx, ds, q, opts)
}

// knownFunctions is the builtin library (§4.4).
var knownFunctions = map[string]bool{
	"SHAPE": true, "NDIM": true, "LEN": true, "SIZE": true, "ROW": true,
	"TEXT": true, "MEAN": true, "SUM": true, "MIN": true, "MAX": true,
	"L2": true, "ANY": true, "ALL": true, "ABS": true, "SQRT": true,
	"CLIP": true, "CONTAINS": true, "DOT": true, "COSINE_SIMILARITY": true,
	"IOU": true, "NORMALIZE": true,
}

// validateExpr rejects unknown functions before execution.
func validateExpr(x Expr) error {
	switch n := x.(type) {
	case Unary:
		return validateExpr(n.X)
	case Binary:
		if err := validateExpr(n.L); err != nil {
			return err
		}
		return validateExpr(n.R)
	case ArrayLit:
		for _, el := range n {
			if err := validateExpr(el); err != nil {
				return err
			}
		}
	case Call:
		if !knownFunctions[n.Name] {
			return fmt.Errorf("tql: unknown function %q", n.Name)
		}
		for _, a := range n.Args {
			if err := validateExpr(a); err != nil {
				return err
			}
		}
	case Index:
		if err := validateExpr(n.X); err != nil {
			return err
		}
		for _, s := range n.Specs {
			for _, e := range []Expr{s.Point, s.Lo, s.Hi} {
				if e != nil {
					if err := validateExpr(e); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func validateQuery(q *Query) error {
	exprs := []Expr{q.Where, q.GroupBy, q.OrderBy, q.ArrangeBy, q.SampleBy}
	for _, sel := range q.Selectors {
		exprs = append(exprs, sel.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := validateExpr(e); err != nil {
			return err
		}
	}
	return nil
}

// Execute runs a parsed query against a dataset with default options.
func Execute(ctx context.Context, ds *core.Dataset, q *Query) (*view.View, error) {
	return ExecuteWith(ctx, ds, q, Options{})
}

// ExecuteWith runs a parsed query through the chunk-partitioned parallel
// scan engine. WHERE's leading shape-only conjuncts become a shape-encoder
// prefilter (zero chunk IO) with the remainder evaluated only over the
// prefilter's survivors; both phases, and every key evaluation, fan out across
// Options.Workers with chunk-aligned partitions and positional merges, so
// results are byte-identical for any worker count.
func ExecuteWith(ctx context.Context, ds *core.Dataset, q *Query, opts Options) (*view.View, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if q.Version != "" {
		var err error
		ds, err = ds.ReadAtVersion(ctx, q.Version)
		if err != nil {
			return nil, err
		}
	}
	sc := &scanner{
		ds:           ds,
		workers:      opts.workers(),
		rawShapes:    opts.DisablePushdown,
		perPartition: opts.PerPartitionPrefetch,
		stripWidth:   opts.stripWidth(),
		stats:        opts.Stats,
	}
	n := ds.NumRows()
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = uint64(i)
	}
	// Filter: leading shape-only conjuncts first (shape-encoder pushdown,
	// no chunk IO), then the remainder over the surviving rows.
	if q.Where != nil {
		shapeConj, dataConj := splitConjuncts(q.Where)
		if opts.DisablePushdown {
			shapeConj, dataConj = nil, []Expr{q.Where}
		}
		var err error
		if pre := andAll(shapeConj); pre != nil {
			if rows, err = sc.filter(ctx, rows, pre); err != nil {
				return nil, err
			}
		}
		if rest := andAll(dataConj); rest != nil {
			if rows, err = sc.filter(ctx, rows, rest); err != nil {
				return nil, err
			}
		}
	}
	// Order.
	if q.OrderBy != nil {
		if err := sortRows(ctx, sc, rows, q.OrderBy, q.OrderDesc); err != nil {
			return nil, err
		}
	}
	// Group (stable, so ORDER BY survives within groups).
	if q.GroupBy != nil {
		if err := sortRows(ctx, sc, rows, q.GroupBy, false); err != nil {
			return nil, err
		}
	}
	// Arrange: round-robin interleave across key groups.
	if q.ArrangeBy != nil {
		var err error
		rows, err = arrangeRows(ctx, sc, rows, q.ArrangeBy)
		if err != nil {
			return nil, err
		}
	}
	// Weighted sampling.
	if q.SampleBy != nil {
		var err error
		rows, err = sampleRows(ctx, sc, rows, q)
		if err != nil {
			return nil, err
		}
	}
	// Offset / limit.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	// Projection.
	columns, err := buildColumns(ds, q)
	if err != nil {
		return nil, err
	}
	return view.New(ds, rows, columns), nil
}

// sortRows stably sorts rows by key. Keys are batch-evaluated through the
// parallel scanner into a slice parallel to rows (duplicate row indices get
// their own entries), and comparisons index that slice through a
// permutation — no per-comparison hashing.
func sortRows(ctx context.Context, sc *scanner, rows []uint64, key Expr, desc bool) error {
	keys, err := sc.keys(ctx, rows, key, "sort key")
	if err != nil {
		return err
	}
	ord := make([]int, len(rows))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(i, j int) bool {
		a, b := keys[ord[i]], keys[ord[j]]
		if desc {
			return b.less(a)
		}
		return a.less(b)
	})
	sorted := make([]uint64, len(rows))
	for i, o := range ord {
		sorted[i] = rows[o]
	}
	copy(rows, sorted)
	return nil
}

// arrangeRows groups rows by key (first-appearance group order) and
// interleaves the groups round-robin, producing a class-balanced stream.
func arrangeRows(ctx context.Context, sc *scanner, rows []uint64, key Expr) ([]uint64, error) {
	keys, err := sc.keys(ctx, rows, key, "arrange key")
	if err != nil {
		return nil, err
	}
	type group struct {
		rows []uint64
	}
	order := []string{}
	groups := map[string]*group{}
	for pos, r := range rows {
		k := keys[pos].str
		if !keys[pos].isStr {
			k = fmt.Sprintf("n:%g", keys[pos].num)
		}
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	out := make([]uint64, 0, len(rows))
	for len(out) < len(rows) {
		progressed := false
		for _, k := range order {
			g := groups[k]
			if len(g.rows) == 0 {
				continue
			}
			out = append(out, g.rows[0])
			g.rows = g.rows[1:]
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out, nil
}

// sampleRows draws a weighted sample without replacement using exponential
// keys (Efraimidis-Spirakis), deterministic per query text so results are
// reproducible across runs and worker counts: weights are batch-evaluated
// in parallel, then the random keys are drawn in one serial pass.
func sampleRows(ctx context.Context, sc *scanner, rows []uint64, q *Query) ([]uint64, error) {
	weights := make([]float64, len(rows))
	err := sc.eval(ctx, rows, q.SampleBy, "sample weight", func(pos int, _ uint64, v Value) error {
		w, err := v.AsNumber()
		if err != nil {
			return err
		}
		weights[pos] = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(q.String()))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	type keyedRow struct {
		row uint64
		key float64
	}
	keys := make([]keyedRow, 0, len(rows))
	for pos, r := range rows {
		w := weights[pos]
		if w <= 0 {
			continue
		}
		keys = append(keys, keyedRow{row: r, key: -math.Log(rng.Float64()) / w})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = k.row
	}
	return out, nil
}

// buildColumns converts selectors into view columns. A bare tensor
// reference becomes an identity column (streamed raw, decode deferred to
// the loader); anything else becomes a computed column evaluated per row.
func buildColumns(ds *core.Dataset, q *Query) ([]view.Column, error) {
	if q.Star {
		return nil, nil // view.New expands nil to all visible tensors
	}
	seen := map[string]bool{}
	var out []view.Column
	for i, sel := range q.Selectors {
		name := sel.Alias
		if id, ok := sel.Expr.(Ident); ok {
			if ds.Tensor(string(id)) == nil {
				return nil, fmt.Errorf("tql: unknown tensor %q", id)
			}
			if name == "" {
				name = string(id)
			}
			if seen[name] {
				return nil, fmt.Errorf("tql: duplicate output column %q", name)
			}
			seen[name] = true
			out = append(out, view.Column{Name: name, Source: string(id)})
			continue
		}
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("tql: duplicate output column %q", name)
		}
		seen[name] = true
		expr := sel.Expr
		out = append(out, view.Column{
			Name: name,
			Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
				v, err := evalExpr(newEnv(ctx, ds, row), expr)
				if err != nil {
					return nil, err
				}
				return v.AsArray()
			},
		})
	}
	return out, nil
}
