package tql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Fuzz targets for the TQL front end. The scan engine work grew the lexer
// and parser without any fuzz coverage; these targets assert the only
// contract a hostile query string gets: a clean error, never a panic, an
// out-of-range token access, or a hang. CI runs them with a short
// -fuzztime next to the unit suite.

// fuzzSeeds covers every token class and clause the lexer/parser know:
// numbers (ints, floats, exponents), single- and double-quoted strings
// with escapes, every operator, bracket indexing with ranges, function
// calls, and the full clause set incl. ARRANGE/SAMPLE BY and VERSION.
var fuzzSeeds = []string{
	"SELECT * FROM ds",
	"SELECT images, labels FROM ds WHERE labels == 2",
	"SELECT * FROM ds WHERE SHAPE(images)[0] > 100 AND MEAN(images) > 50.5",
	"SELECT images[0:2, 10:20] FROM ds ORDER BY labels DESC LIMIT 10 OFFSET 5",
	"SELECT * FROM ds GROUP BY labels",
	"SELECT * FROM ds SAMPLE BY MAX_WEIGHT(labels == 2: 10, True: 1)",
	"SELECT * FROM ds ARRANGE BY labels",
	"SELECT * FROM ds VERSION \"v00000001\" WHERE labels != 0",
	"SELECT * FROM ds WHERE CONTAINS(categories, 'person')",
	"SELECT * FROM ds WHERE labels IN (1, 2, 3) OR NOT (labels >= 7)",
	"SELECT l2_norm(embeddings - ARRAY[1.0, 2.5e-3, .5]) AS dist FROM ds",
	"SELECT * FROM ds WHERE text == 'it''s' AND other == \"a\\\"b\"",
	"SELECT * FROM ds WHERE a + b * c / d % e - -f == +1e10",
	"SELECT RANDOM() FROM ds UNION SELECT * FROM ds2",
	"select lower(mixed_CASE) from ds where size(x) <= ndim(y)",
	"SELECT * FROM ds WHERE x[0][1:2][3:] < 4",
	"",
	"SELECT",
	"((((((((((",
	"'unterminated",
	"\x00\xff\xfe",
	"SELECT * FROM ds WHERE " + strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64),
	"9999999999999999999999999999999999999999e999999999",
	"-- comment? tql has none",
}

// FuzzLex runs the lexer alone: any input must yield tokens or an error,
// and returned tokens must cover valid byte ranges of the input.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tokens, err := lex(src)
		if err != nil {
			return
		}
		if len(tokens) == 0 {
			t.Fatalf("lex(%q) returned no tokens and no error (EOF token missing)", src)
		}
		for _, tok := range tokens {
			if tok.pos < 0 || tok.pos > len(src) {
				t.Fatalf("lex(%q): token %q at out-of-range pos %d", src, tok.text, tok.pos)
			}
		}
	})
}

// FuzzParse runs the full front end: lex, parse, and — when a query
// survives — plan compilation. None of the stages may panic.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			// Errors must still be well-formed for valid UTF-8 inputs.
			if utf8.ValidString(src) && err.Error() == "" {
				t.Fatalf("Parse(%q): empty error message", src)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q): nil query without error", src)
		}
		if _, err := Compile(q); err != nil {
			return
		}
	})
}
