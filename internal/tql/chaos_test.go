package tql

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// The scan chaos suite: run with -race. A chunk-partitioned parallel scan
// over a faulty origin must fail loudly (with the transient classification
// intact) when no retry layer is stacked, and must produce exactly the
// fault-free result set when one is.

const chaosScanQuery = `SELECT labels FROM scan WHERE MEAN(x) >= 0`

func TestScanSurfacesMidScanFaults(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	scanDataset(t, mem, 60, []int{8})

	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: 31, GetErrRate: 0.5, RangeErrRate: 0.5})
	faulty.SetArmed(false)
	ds, err := core.Open(ctx, faulty)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	_, err = RunWith(ctx, ds, chaosScanQuery, Options{Workers: 4})
	if err == nil {
		t.Fatal("full scan over a 50 percent faulty origin with no retry layer succeeded")
	}
	if !storage.IsRetryable(err) {
		t.Fatalf("scan flattened the transient classification: %v", err)
	}
}

func TestScanMatchesCleanResultThroughRetry(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	cds := scanDataset(t, mem, 60, []int{4, 6, 8})

	want, err := RunWith(ctx, cds, chaosScanQuery, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	faulty := storage.NewFaulty(mem, storage.FaultConfig{
		Seed: 31, GetErrRate: 0.3, RangeErrRate: 0.3, StallRate: 0.05,
	})
	faulty.SetArmed(false)
	retry := storage.NewRetry(faulty, storage.RetryOptions{
		Attempts:  6,
		OpTimeout: 50 * time.Millisecond,
		Backoff:   storage.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 31},
	})
	ds, err := core.Open(ctx, retry)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	got, err := RunWith(ctx, ds, chaosScanQuery, Options{Workers: 4})
	faulty.SetArmed(false)
	if err != nil {
		t.Fatalf("retry layer leaked a fault into the scan: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("faulty scan matched %d rows, clean scan %d", got.Len(), want.Len())
	}
	if !reflect.DeepEqual(got.Indices(), want.Indices()) {
		t.Fatal("faulty scan selected different rows than the clean scan")
	}
	if faulty.Stats().Total() == 0 {
		t.Fatal("fault schedule injected nothing; recovery untested")
	}
	if retry.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}
