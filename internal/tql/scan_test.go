package tql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// scanDataset builds a dataset whose x tensor spans many small chunks, with
// per-row shapes dim x dim where dim = dims[i%len(dims)], plus an int label
// column.
func scanDataset(t *testing.T, store storage.Provider, n int, dims []int) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, store, "scan")
	if err != nil {
		t.Fatal(err)
	}
	bounds := chunk.Bounds{Min: 128, Target: 256, Max: 512}
	x, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label", Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dim := dims[i%len(dims)]
		arr := tensor.MustNew(tensor.UInt8, dim, dim)
		for j := 0; j < dim*dim; j++ {
			arr.SetAt(float64((i*7+j)%251), j/dim, j%dim)
		}
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
		if err := labels.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestShapeOnlyWhereZeroChunkGets asserts the pushdown acceptance
// criterion: a shape-only WHERE (at any worker count) answers entirely from
// the shape encoder with zero chunk Gets against storage.
func TestShapeOnlyWhereZeroChunkGets(t *testing.T) {
	ctx := context.Background()
	count := storage.NewCounting(storage.NewMemory())
	ds := scanDataset(t, count, 60, []int{4, 6, 8})
	for _, workers := range []int{1, 16} {
		count.Reset()
		v, err := RunWith(ctx, ds, "SELECT labels FROM scan WHERE SHAPE(x)[0] >= 6 AND SIZE(x) <= 36", Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != 20 { // dim 6 rows only: 6*6 <= 36 < 8*8
			t.Fatalf("workers=%d rows = %d, want 20", workers, v.Len())
		}
		if got := count.Requests(); got != 0 {
			t.Fatalf("workers=%d shape-only WHERE did %d chunk reads, want 0", workers, got)
		}
	}
}

// TestDataTouchingSubscriptIsNotShapeOnly guards the pushdown classifier:
// a shape call whose subscript itself loads tensor data must not be
// promised as zero-IO, but still returns correct results.
func TestDataTouchingSubscriptIsNotShapeOnly(t *testing.T) {
	ctx := context.Background()
	count := storage.NewCounting(storage.NewMemory())
	ds := scanDataset(t, count, 20, []int{4, 6})
	const q = "SELECT labels FROM scan WHERE SHAPE(x)[CLIP(MEAN(labels), 0, 0)] >= 6"
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if shape, data := splitConjuncts(parsed.Where); len(shape) != 0 || len(data) != 1 {
		t.Fatalf("data-touching subscript split as shape=%d data=%d, want 0/1", len(shape), len(data))
	}
	v, err := RunWith(ctx, ds, q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 10 { // dim-6 rows
		t.Fatalf("rows = %d, want 10", v.Len())
	}
}

// TestPushdownPreservesShortCircuitGuards asserts that only the leading
// run of shape-only conjuncts is hoisted: a shape conjunct guarded by an
// earlier data conjunct keeps its short-circuit protection, so a query
// whose guarded conjunct would error on some rows still succeeds.
func TestPushdownPreservesShortCircuitGuards(t *testing.T) {
	ctx := context.Background()
	ds := scanDataset(t, storage.NewMemory(), 20, []int{4, 6})
	// labels == 99 never matches, so SHAPE(x)[5] (out of range for 2-d
	// samples) must never be evaluated.
	v, err := RunWith(ctx, ds, "SELECT * FROM scan WHERE labels == 99 AND SHAPE(x)[5] > 0", Options{Workers: 4})
	if err != nil {
		t.Fatalf("guarded shape conjunct was evaluated: %v", err)
	}
	if v.Len() != 0 {
		t.Fatalf("rows = %d, want 0", v.Len())
	}
	// Unguarded, the same conjunct errors — in textual order, exactly as
	// the serial short-circuit evaluator would.
	if _, err := RunWith(ctx, ds, "SELECT * FROM scan WHERE SHAPE(x)[5] > 0 AND labels == 99", Options{Workers: 4}); err == nil {
		t.Fatal("leading out-of-range shape conjunct should error")
	}
}

// TestPartialPushdownPrefiltersChunkIO asserts that in `A AND B` with A
// shape-only, the data-touching part runs only over A's survivors: chunks
// holding no surviving row are never fetched.
func TestPartialPushdownPrefiltersChunkIO(t *testing.T) {
	ctx := context.Background()
	count := storage.NewCounting(storage.NewMemory())
	ds := scanDataset(t, count, 60, []int{8})
	total := ds.Tensor("x").NumChunks()
	if total < 8 {
		t.Fatalf("dataset too coarse: %d chunks", total)
	}
	count.Reset()
	v, err := RunWith(ctx, ds, "SELECT labels FROM scan WHERE ROW() < 8 AND MEAN(x) >= 0", Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 8 {
		t.Fatalf("rows = %d, want 8", v.Len())
	}
	gets := count.Snapshot().Gets
	if gets == 0 || gets >= int64(total) {
		t.Fatalf("prefiltered scan fetched %d of %d chunks; want a strict subset covering rows 0-7", gets, total)
	}
}

// TestChunkAwareScanFetchesEachChunkOnce asserts the chunk-partitioned
// engine's IO contract: a full data-touching WHERE fetches every chunk of
// the scanned tensor exactly once, regardless of worker count, because
// partitions are chunk-aligned and workers reuse decoded chunks.
func TestChunkAwareScanFetchesEachChunkOnce(t *testing.T) {
	ctx := context.Background()
	count := storage.NewCounting(storage.NewMemory())
	ds := scanDataset(t, count, 60, []int{8})
	total := int64(ds.Tensor("x").NumChunks())
	for _, workers := range []int{1, 4, 16} {
		count.Reset()
		v, err := RunWith(ctx, ds, "SELECT labels FROM scan WHERE MEAN(x) >= 0", Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != 60 {
			t.Fatalf("workers=%d rows = %d, want 60", workers, v.Len())
		}
		if gets := count.Snapshot().Gets; gets != total {
			t.Fatalf("workers=%d fetched %d chunk(s), want exactly %d (one per chunk)", workers, gets, total)
		}
	}
}

// TestPushdownMatchesFullScanRandomized cross-checks the shape encoder
// against the data itself: on randomized datasets, every shape-flavoured
// query returns the same row set whether answered by the encoder (pushdown)
// or by decoding samples (DisablePushdown).
func TestPushdownMatchesFullScanRandomized(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		dims := make([]int, 1+rng.Intn(4))
		for i := range dims {
			dims[i] = 3 + rng.Intn(6)
		}
		n := 30 + rng.Intn(40)
		ds := scanDataset(t, storage.NewMemory(), n, dims)
		queries := []string{
			fmt.Sprintf("SELECT * FROM scan WHERE SHAPE(x)[0] > %d", 3+rng.Intn(5)),
			fmt.Sprintf("SELECT * FROM scan WHERE SIZE(x) >= %d AND NDIM(x) == 2", 9+rng.Intn(40)),
			fmt.Sprintf("SELECT * FROM scan WHERE LEN(x) <= %d AND MEAN(x) >= 0", 4+rng.Intn(5)),
			fmt.Sprintf("SELECT * FROM scan WHERE SHAPE(x)[1] == %d OR labels == %d", dims[0], rng.Intn(5)),
		}
		for _, q := range queries {
			push, err := RunWith(ctx, ds, q, Options{Workers: 8})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			full, err := RunWith(ctx, ds, q, Options{Workers: 8, DisablePushdown: true})
			if err != nil {
				t.Fatalf("%s (full scan): %v", q, err)
			}
			if !reflect.DeepEqual(push.Indices(), full.Indices()) {
				t.Fatalf("trial %d %s: pushdown %v != full scan %v", trial, q, push.Indices(), full.Indices())
			}
		}
	}
}

// TestParallelScanDeterminism asserts the tentpole's ordering contract:
// the same query produces byte-identical views at workers=1 and workers=16,
// across filter, order, group, arrange and weighted-sample stages.
func TestParallelScanDeterminism(t *testing.T) {
	ctx := context.Background()
	ds := scanDataset(t, storage.NewMemory(), 150, []int{4, 6, 8, 10})
	queries := []string{
		"SELECT * FROM scan WHERE MEAN(x) > 100",
		"SELECT labels FROM scan WHERE SHAPE(x)[0] >= 6 AND MEAN(x) > 50 ORDER BY MEAN(x) DESC",
		"SELECT * FROM scan GROUP BY labels",
		"SELECT * FROM scan WHERE labels < 4 ARRANGE BY labels",
		"SELECT * FROM scan SAMPLE BY labels + 1 LIMIT 40",
		"SELECT * FROM scan WHERE MEAN(x) > 20 ORDER BY labels ARRANGE BY SHAPE(x)[0] LIMIT 60 OFFSET 5",
	}
	for _, q := range queries {
		serial, err := RunWith(ctx, ds, q, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		parallel, err := RunWith(ctx, ds, q, Options{Workers: 16})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !reflect.DeepEqual(serial.Indices(), parallel.Indices()) {
			t.Fatalf("%s: workers=1 %v != workers=16 %v", q, serial.Indices(), parallel.Indices())
		}
		if serial.Len() == 0 {
			t.Fatalf("%s: empty result weakens the comparison", q)
		}
		// Spot-check cell bytes, not just row identity.
		for _, row := range []int{0, serial.Len() - 1} {
			for _, col := range serial.ColumnNames() {
				a, err := serial.At(ctx, row, col)
				if err != nil {
					t.Fatal(err)
				}
				b, err := parallel.At(ctx, row, col)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Bytes(), b.Bytes()) {
					t.Fatalf("%s: row %d col %s differs between worker counts", q, row, col)
				}
			}
		}
	}
}

// TestStripPrefetchCoalescesAcrossPartitions is the tentpole's IO-shape
// assertion at unit scale: with a prefetching cache in the chain, the
// cross-partition strip scheduler serves a 16-worker data scan in strictly
// fewer origin requests than the per-partition prefetch it replaces,
// because strips pack chunks owned by different workers into shared batch
// requests. Results are identical either way.
func TestStripPrefetchCoalescesAcrossPartitions(t *testing.T) {
	ctx := context.Background()
	count := storage.NewCounting(storage.NewMemory())
	scanDataset(t, count, 96, []int{8})
	openCold := func() *core.Dataset {
		ds, err := core.Open(ctx, storage.NewShardedLRU(count, 1<<30, 1))
		if err != nil {
			t.Fatal(err)
		}
		count.Reset()
		return ds
	}
	const q = "SELECT labels FROM scan WHERE MEAN(x) >= 0"

	var stripStats ScanStats
	strip, err := RunWith(ctx, openCold(), q, Options{Workers: 16, Stats: &stripStats})
	if err != nil {
		t.Fatal(err)
	}
	stripReqs := count.Requests()

	var legacyStats ScanStats
	legacy, err := RunWith(ctx, openCold(), q, Options{Workers: 16, PerPartitionPrefetch: true, Stats: &legacyStats})
	if err != nil {
		t.Fatal(err)
	}
	legacyReqs := count.Requests()

	if !reflect.DeepEqual(strip.Indices(), legacy.Indices()) {
		t.Fatalf("strip scan %v != per-partition scan %v", strip.Indices(), legacy.Indices())
	}
	if strip.Len() != 96 {
		t.Fatalf("rows = %d, want 96", strip.Len())
	}
	if stripStats.PrefetchStrips() == 0 || stripStats.PrefetchPlanned() == 0 {
		t.Fatalf("strip scheduler idle: %s", &stripStats)
	}
	if legacyStats.PrefetchStrips() != 0 {
		t.Fatalf("per-partition mode issued %d strips", legacyStats.PrefetchStrips())
	}
	if legacyStats.PrefetchPlanned() == 0 {
		t.Fatalf("per-partition prefetch unobserved: %s", &legacyStats)
	}
	if stripReqs >= legacyReqs {
		t.Fatalf("strips did not coalesce across partitions: %d origin requests vs %d per-partition", stripReqs, legacyReqs)
	}
}

// TestScanStatsCountSkippedPrefetch asserts the planned/claimed/skipped
// ledger: a rescan over a warm cache plans the same chunks but claims none
// of them — every one counts as skipped, not silently dropped.
func TestScanStatsCountSkippedPrefetch(t *testing.T) {
	ctx := context.Background()
	ds, err := core.Open(ctx, storage.NewShardedLRU(func() storage.Provider {
		mem := storage.NewMemory()
		scanDataset(t, mem, 60, []int{8})
		return mem
	}(), 1<<30, 1))
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT labels FROM scan WHERE MEAN(x) >= 0"
	var cold ScanStats
	if _, err := RunWith(ctx, ds, q, Options{Workers: 4, Stats: &cold}); err != nil {
		t.Fatal(err)
	}
	if cold.PrefetchClaimed() == 0 {
		t.Fatalf("cold scan claimed nothing: %s", &cold)
	}
	var warm ScanStats
	if _, err := RunWith(ctx, ds, q, Options{Workers: 4, Stats: &warm}); err != nil {
		t.Fatal(err)
	}
	if warm.PrefetchPlanned() == 0 || warm.PrefetchClaimed() != 0 {
		t.Fatalf("warm scan should plan but claim nothing: %s", &warm)
	}
	if warm.PrefetchSkipped() != warm.PrefetchPlanned() {
		t.Fatalf("skipped %d != planned %d on warm cache", warm.PrefetchSkipped(), warm.PrefetchPlanned())
	}
}

// TestStripWidthOne degenerates the strip scheduler to one chunk per strip
// and checks it still covers the whole scan correctly — the boundary case
// of the width knob.
func TestStripWidthOne(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	scanDataset(t, mem, 60, []int{8})
	ds, err := core.Open(ctx, storage.NewShardedLRU(mem, 1<<30, 1))
	if err != nil {
		t.Fatal(err)
	}
	var stats ScanStats
	v, err := RunWith(ctx, ds, "SELECT labels FROM scan WHERE MEAN(x) >= 0", Options{Workers: 8, StripWidth: 1, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 60 {
		t.Fatalf("rows = %d, want 60", v.Len())
	}
	if stats.PrefetchStrips() != stats.PrefetchPlanned() {
		t.Fatalf("width-1 strips carry one chunk each: strips %d, planned %d", stats.PrefetchStrips(), stats.PrefetchPlanned())
	}
}

// cancelStore cancels a context after a fixed number of Gets, simulating a
// caller abandoning a query mid-scan.
type cancelStore struct {
	storage.Provider
	cancel context.CancelFunc
	after  int64
	n      int64
}

func (s *cancelStore) Get(ctx context.Context, key string) ([]byte, error) {
	if atomic.AddInt64(&s.n, 1) == s.after {
		s.cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Provider.Get(ctx, key)
}

// TestParallelScanCancellation asserts that cancelling the query context
// mid-scan aborts every worker and surfaces context.Canceled.
func TestParallelScanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelStore{Provider: storage.NewMemory(), cancel: cancel, after: 1 << 62}
	ds := scanDataset(t, cs, 120, []int{8})
	// Arm the trigger only for the query's chunk reads, not ingestion's.
	atomic.StoreInt64(&cs.n, 0)
	cs.after = 3
	for _, workers := range []int{1, 8} {
		atomic.StoreInt64(&cs.n, 0)
		_, err := RunWith(ctx, ds, "SELECT * FROM scan WHERE MEAN(x) >= 0", Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The context stays cancelled for the second loop iteration; that
		// still must surface context.Canceled, not a wrong answer.
	}
}
