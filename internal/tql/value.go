package tql

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Value is a runtime TQL value.
type Value struct {
	kind valueKind
	num  float64
	str  string
	arr  *tensor.NDArray
	b    bool
}

type valueKind int

const (
	kindNum valueKind = iota
	kindStr
	kindArr
	kindBool
)

func numVal(f float64) Value         { return Value{kind: kindNum, num: f} }
func strVal(s string) Value          { return Value{kind: kindStr, str: s} }
func arrVal(a *tensor.NDArray) Value { return Value{kind: kindArr, arr: a} }
func boolVal(b bool) Value           { return Value{kind: kindBool, b: b} }

// IsTruthy interprets the value as a predicate result.
func (v Value) IsTruthy() bool {
	switch v.kind {
	case kindBool:
		return v.b
	case kindNum:
		return v.num != 0
	case kindStr:
		return v.str != ""
	case kindArr:
		return v.arr != nil && v.arr.Any()
	}
	return false
}

// AsNumber coerces to a float64 when possible.
func (v Value) AsNumber() (float64, error) {
	switch v.kind {
	case kindNum:
		return v.num, nil
	case kindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case kindArr:
		if v.arr.Len() == 1 {
			return v.arr.Item()
		}
		return 0, fmt.Errorf("tql: array of %d elements is not a scalar", v.arr.Len())
	case kindStr:
		return 0, fmt.Errorf("tql: string %q is not a number", v.str)
	}
	return 0, fmt.Errorf("tql: not a number")
}

// AsArray coerces to an NDArray; scalars become 0-d arrays, strings become
// uint8 text arrays.
func (v Value) AsArray() (*tensor.NDArray, error) {
	switch v.kind {
	case kindArr:
		return v.arr, nil
	case kindNum:
		return tensor.Scalar(tensor.Float64, v.num), nil
	case kindBool:
		if v.b {
			return tensor.Scalar(tensor.Bool, 1), nil
		}
		return tensor.Scalar(tensor.Bool, 0), nil
	case kindStr:
		return tensor.FromString(v.str), nil
	}
	return nil, fmt.Errorf("tql: not an array")
}

// sortKey produces a comparable key for ORDER/GROUP/ARRANGE BY.
func (v Value) sortKey() (isStr bool, num float64, str string, err error) {
	switch v.kind {
	case kindStr:
		return true, 0, v.str, nil
	default:
		n, err := v.AsNumber()
		if err != nil {
			return false, 0, "", fmt.Errorf("tql: sort key must be scalar or string: %w", err)
		}
		return false, n, "", nil
	}
}

// env provides per-row name resolution with caching. Tensor loads are lazy:
// a WHERE over labels never touches image chunks (pushdown by laziness).
type env struct {
	ctx context.Context
	ds  *core.Dataset
	row uint64

	mu    sync.Mutex
	cache map[string]*tensor.NDArray

	// readers, when non-nil, serve data loads through per-tensor
	// ScanReaders so consecutive rows of one chunk fetch and decode it
	// once. Scan workers own one env each and reposition it with reset;
	// per-call envs (view columns) leave readers nil.
	readers map[string]*core.ScanReader
	// rawShapes resolves SHAPE/NDIM/LEN/SIZE from decoded sample data
	// instead of the shape encoder (Options.DisablePushdown).
	rawShapes bool
}

func newEnv(ctx context.Context, ds *core.Dataset, row uint64) *env {
	return &env{ctx: ctx, ds: ds, row: row, cache: map[string]*tensor.NDArray{}}
}

// newScanEnv returns a reusable worker environment with chunk-granular read
// reuse enabled; reset repositions it before each row.
func newScanEnv(ctx context.Context, ds *core.Dataset) *env {
	return &env{
		ctx:     ctx,
		ds:      ds,
		cache:   map[string]*tensor.NDArray{},
		readers: map[string]*core.ScanReader{},
	}
}

// reset repositions the env on a row, keeping the tensor readers (and their
// decoded chunks) while dropping the per-row value cache.
func (e *env) reset(row uint64) {
	e.mu.Lock()
	e.row = row
	clear(e.cache)
	e.mu.Unlock()
}

// lookupTensor resolves name to the row's sample array.
func (e *env) lookupTensor(name string) (*tensor.NDArray, error) {
	e.mu.Lock()
	if arr, ok := e.cache[name]; ok {
		e.mu.Unlock()
		return arr, nil
	}
	e.mu.Unlock()
	t := e.ds.Tensor(name)
	if t == nil {
		return nil, fmt.Errorf("tql: unknown tensor %q", name)
	}
	var (
		arr *tensor.NDArray
		err error
	)
	if t.Htype().Link {
		url, lerr := t.LinkAt(e.ctx, e.row)
		if lerr != nil {
			return nil, lerr
		}
		arr = tensor.FromString(url)
	} else if e.readers != nil {
		r := e.readers[name]
		if r == nil {
			r = t.NewScanReader()
			e.readers[name] = r
		}
		arr, err = r.At(e.ctx, e.row)
		if err != nil {
			return nil, err
		}
	} else {
		arr, err = t.At(e.ctx, e.row)
		if err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.cache[name] = arr
	e.mu.Unlock()
	return arr, nil
}

// shapeOf resolves a sample shape through the shape encoder without chunk
// IO (§3.4 fast shape queries).
func (e *env) shapeOf(name string) ([]int, error) {
	t := e.ds.Tensor(name)
	if t == nil {
		return nil, fmt.Errorf("tql: unknown tensor %q", name)
	}
	return t.Shape(e.row)
}
