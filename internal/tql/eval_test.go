package tql

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// evalOn evaluates a standalone expression against row 0 of a one-row
// dataset with tensors "v" ([3] float64) and "b" ([2,4] bbox).
func evalOn(t *testing.T, expr string) (Value, error) {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "e")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "v", Dtype: tensor.Float64})
	arr, _ := tensor.FromFloat64s(tensor.Float64, []int{3}, []float64{1, 2, 3})
	v.Append(ctx, arr)
	b, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "b", Htype: "bbox"})
	boxes, _ := tensor.FromFloat64s(tensor.Float32, []int{2, 4}, []float64{0, 0, 10, 10, 5, 5, 10, 10})
	b.Append(ctx, boxes)
	txt, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "txt", Htype: "text"})
	txt.Append(ctx, tensor.FromString("hello"))

	parsed, err := Parse("SELECT " + expr + " as out FROM e")
	if err != nil {
		return Value{}, err
	}
	return evalExpr(newEnv(ctx, ds, 0), parsed.Selectors[0].Expr)
}

func TestEvalValueCoercions(t *testing.T) {
	// String truthiness / number coercion failures.
	v, err := evalOn(t, `"nonempty"`)
	if err != nil || !v.IsTruthy() {
		t.Fatalf("string truthy = %v, %v", v, err)
	}
	if _, err := v.AsNumber(); err == nil {
		t.Fatal("string AsNumber should error")
	}
	arr, err := v.AsArray()
	if err != nil || arr.AsString() != "nonempty" {
		t.Fatalf("string AsArray = %v, %v", arr, err)
	}

	// Array truthiness.
	v, err = evalOn(t, "v")
	if err != nil || !v.IsTruthy() {
		t.Fatalf("array truthy: %v, %v", v, err)
	}
	if _, err := v.AsNumber(); err == nil {
		t.Fatal("multi-element array AsNumber should error")
	}
	// Bool to array.
	v, _ = evalOn(t, "1 == 1")
	barr, err := v.AsArray()
	if err != nil || barr.Dtype() != tensor.Bool {
		t.Fatalf("bool AsArray = %v, %v", barr, err)
	}
}

func TestEvalArithmeticEdges(t *testing.T) {
	// Division by zero follows IEEE.
	v, err := evalOn(t, "1 / 0")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsNumber()
	if !math.IsInf(f, 1) {
		t.Fatalf("1/0 = %v", f)
	}
	// Array modulo rejected.
	if _, err := evalOn(t, "v % 2"); err == nil {
		t.Fatal("array %% should error")
	}
	// Array plus array.
	v, err = evalOn(t, "v + v")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := v.AsArray()
	if !reflect.DeepEqual(arr.Float64s(), []float64{2, 4, 6}) {
		t.Fatalf("v+v = %v", arr.Float64s())
	}
	// Unary minus on arrays.
	v, err = evalOn(t, "-v")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ = v.AsArray()
	if arr.Float64s()[0] != -1 {
		t.Fatalf("-v = %v", arr.Float64s())
	}
	// NOT.
	v, err = evalOn(t, "NOT (1 == 2)")
	if err != nil || !v.IsTruthy() {
		t.Fatalf("NOT = %v, %v", v, err)
	}
}

func TestEvalStringComparisons(t *testing.T) {
	cases := map[string]bool{
		`"a" < "b"`:            true,
		`"a" == "a"`:           true,
		`"a" != "a"`:           false,
		`"b" >= "a"`:           true,
		`TEXT(txt) == "hello"`: true,
	}
	for expr, want := range cases {
		v, err := evalOn(t, expr)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if v.IsTruthy() != want {
			t.Errorf("%s = %v, want %v", expr, v.IsTruthy(), want)
		}
	}
}

func TestEvalIndexingEdges(t *testing.T) {
	// Point index into a 1-d tensor yields a scalar.
	v, err := evalOn(t, "v[1]")
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.AsNumber()
	if err != nil || f != 2 {
		t.Fatalf("v[1] = %v, %v", f, err)
	}
	// Negative literal index via arithmetic is out of range.
	if _, err := evalOn(t, "v[7]"); err == nil {
		t.Fatal("out-of-range index should error")
	}
	// Slice of a slice via mixed specs.
	v, err = evalOn(t, "b[0, 2:4]")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := v.AsArray()
	if !reflect.DeepEqual(arr.Float64s(), []float64{10, 10}) {
		t.Fatalf("b[0, 2:4] = %v", arr.Float64s())
	}
	// Open-ended slices.
	v, err = evalOn(t, "v[1:]")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ = v.AsArray()
	if arr.Len() != 2 {
		t.Fatalf("v[1:] len = %d", arr.Len())
	}
	v, err = evalOn(t, "v[:2]")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ = v.AsArray()
	if arr.Len() != 2 {
		t.Fatalf("v[:2] len = %d", arr.Len())
	}
}

func TestIOUEdgeCases(t *testing.T) {
	// Perfect overlap.
	v, err := evalOn(t, "IOU(b[0:1], b[0:1])")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsNumber()
	if math.Abs(f-1) > 1e-9 {
		t.Fatalf("self IOU = %v", f)
	}
	// Disjoint boxes.
	v, err = evalOn(t, "IOU([0,0,1,1], [5,5,1,1])")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsNumber(); f != 0 {
		t.Fatalf("disjoint IOU = %v", f)
	}
	// Degenerate zero-area boxes.
	v, err = evalOn(t, "IOU([0,0,0,0], [0,0,0,0])")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsNumber(); f != 0 {
		t.Fatalf("zero-area IOU = %v", f)
	}
	// Malformed box shapes.
	if _, err := evalOn(t, "IOU([1,2,3], [1,2,3,4])"); err == nil {
		t.Fatal("3-element box should error")
	}
	if _, err := evalOn(t, "NORMALIZE(b, [0,0,0,10])"); err == nil {
		t.Fatal("zero-extent region should error")
	}
	if _, err := evalOn(t, "NORMALIZE(b, [1,2,3])"); err == nil {
		t.Fatal("3-element region should error")
	}
}

func TestBuiltinErrorArities(t *testing.T) {
	for _, expr := range []string{
		"MEAN()",
		"CLIP(v)",
		"ROW(1)",
		"SHAPE(v, v)",
		"CONTAINS(v)",
		"DOT(v)",
	} {
		if _, err := evalOn(t, expr); err == nil {
			t.Errorf("%s should error", expr)
		}
	}
}

func TestSQRTAndClipCombos(t *testing.T) {
	v, err := evalOn(t, "SQRT([4, 9, 16])")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := v.AsArray()
	if !reflect.DeepEqual(arr.Float64s(), []float64{2, 3, 4}) {
		t.Fatalf("SQRT = %v", arr.Float64s())
	}
	v, err = evalOn(t, "MAX(CLIP(v, 0, 2))")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsNumber(); f != 2 {
		t.Fatalf("MAX(CLIP) = %v", f)
	}
	v, err = evalOn(t, "L2([3, 4])")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsNumber(); f != 5 {
		t.Fatalf("L2 = %v", f)
	}
	v, err = evalOn(t, "ANY(v - v)")
	if err != nil || v.IsTruthy() {
		t.Fatalf("ANY(zeros) = %v, %v", v, err)
	}
	v, err = evalOn(t, "ALL(v)")
	if err != nil || !v.IsTruthy() {
		t.Fatalf("ALL(v) = %v, %v", v, err)
	}
}
