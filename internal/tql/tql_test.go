package tql

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

var smallBounds = chunk.Bounds{Min: 64, Target: 128, Max: 256}

// queryDataset builds a small detection-style dataset: images, labels,
// boxes, plus reference boxes under a group path.
func queryDataset(t *testing.T) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "q")
	if err != nil {
		t.Fatal(err)
	}
	imgs, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Dtype: tensor.UInt8, Bounds: smallBounds})
	labels, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds})
	boxes, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "boxes", Htype: "bbox", Bounds: smallBounds})
	ref, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "training/boxes", Htype: "bbox", Bounds: smallBounds})

	for i := 0; i < 10; i++ {
		img := tensor.MustNew(tensor.UInt8, 8, 8)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				img.SetAt(float64((i+y+x)%256), y, x)
			}
		}
		if err := imgs.Append(ctx, img); err != nil {
			t.Fatal(err)
		}
		if err := labels.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%3))); err != nil {
			t.Fatal(err)
		}
		// Predicted box drifts away from the reference as i grows.
		b, _ := tensor.FromFloat64s(tensor.Float32, []int{1, 4}, []float64{float64(i), 0, 10, 10})
		if err := boxes.Append(ctx, b); err != nil {
			t.Fatal(err)
		}
		r, _ := tensor.FromFloat64s(tensor.Float32, []int{1, 4}, []float64{0, 0, 10, 10})
		if err := ref.Append(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func labelsOf(t *testing.T, v interface {
	Len() int
	At(context.Context, int, string) (*tensor.NDArray, error)
}) []int {
	t.Helper()
	out := make([]int, v.Len())
	for i := range out {
		arr, err := v.At(context.Background(), i, "labels")
		if err != nil {
			t.Fatal(err)
		}
		f, _ := arr.Item()
		out[i] = int(f)
	}
	return out
}

func TestParseFig5Query(t *testing.T) {
	src := `SELECT
		images[100:500, 100:500, 0:2] as crop,
		NORMALIZE(boxes, [100, 100, 400, 400]) as box
	FROM dataset
	WHERE IOU(boxes, "training/boxes") > 0.95
	ORDER BY IOU(boxes, "training/boxes")
	ARRANGE BY labels`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selectors) != 2 || q.Selectors[0].Alias != "crop" || q.Selectors[1].Alias != "box" {
		t.Fatalf("selectors = %+v", q.Selectors)
	}
	if q.From != "dataset" || q.Where == nil || q.OrderBy == nil || q.ArrangeBy == nil {
		t.Fatalf("clauses = %+v", q)
	}
	ix, ok := q.Selectors[0].Expr.(Index)
	if !ok || len(ix.Specs) != 3 || !ix.Specs[0].Slice {
		t.Fatalf("crop selector = %+v", q.Selectors[0].Expr)
	}
	// Round trip through String -> Parse.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("non-idempotent string:\n%s\n%s", q.String(), q2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"WHERE x > 1",
		"SELECT",
		"SELECT x FROM",
		"SELECT x WHERE",
		"SELECT x LIMIT notanumber",
		"SELECT x ORDER x",
		"SELECT x[",
		"SELECT x[]",
		"SELECT f(",
		"SELECT 'unterminated",
		"SELECT 1.2.3",
		"SELECT x; DROP TABLE",
		"SELECT x AS 3",
		"SELECT x VERSION v1", // version must be a string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestSelectStar(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT * FROM q")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 10 {
		t.Fatalf("rows = %d", v.Len())
	}
	want := []string{"images", "labels", "boxes", "training/boxes"}
	if !reflect.DeepEqual(v.ColumnNames(), want) {
		t.Fatalf("columns = %v", v.ColumnNames())
	}
}

func TestWhereFilter(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q WHERE labels == 1")
	if err != nil {
		t.Fatal(err)
	}
	got := labelsOf(t, v)
	if !reflect.DeepEqual(got, []int{1, 1, 1}) {
		t.Fatalf("labels = %v", got)
	}
}

func TestWhereCompound(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q WHERE labels == 1 OR labels == 2 AND NOT (labels == 1)")
	if err != nil {
		t.Fatal(err)
	}
	got := labelsOf(t, v)
	if !reflect.DeepEqual(got, []int{1, 2, 1, 2, 1, 2}) {
		t.Fatalf("labels = %v", got)
	}
}

func TestOrderByDesc(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q ORDER BY ROW() DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	idx := v.Indices()
	if !reflect.DeepEqual(idx, []uint64{9, 8, 7}) {
		t.Fatalf("indices = %v", idx)
	}
}

func TestLimitOffset(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q LIMIT 4 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Indices(), []uint64{2, 3, 4, 5}) {
		t.Fatalf("indices = %v", v.Indices())
	}
	// Offset beyond the result is empty, not an error.
	v, err = Run(context.Background(), ds, "SELECT labels FROM q LIMIT 5 OFFSET 100")
	if err != nil || v.Len() != 0 {
		t.Fatalf("oversized offset = %d rows, %v", v.Len(), err)
	}
}

func TestArrangeByBalancesClasses(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q ARRANGE BY labels")
	if err != nil {
		t.Fatal(err)
	}
	got := labelsOf(t, v)
	// 10 rows with labels i%3: groups 0(4), 1(3), 2(3) -> round robin.
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arranged labels = %v, want %v", got, want)
	}
}

func TestGroupByAdjacent(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q GROUP BY labels")
	if err != nil {
		t.Fatal(err)
	}
	got := labelsOf(t, v)
	want := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grouped labels = %v", got)
	}
}

func TestIOUFilterAndOrderFig5Semantics(t *testing.T) {
	ds := queryDataset(t)
	// Boxes drift by i; IOU(boxes, ref) decreases with i. Threshold keeps
	// small i only.
	v, err := Run(context.Background(), ds, `SELECT labels FROM q WHERE IOU(boxes, "training/boxes") > 0.8 ORDER BY IOU(boxes, "training/boxes") DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// IoU for shift i: (10-i)/(10+i) > 0.8 -> i == 0 or 1.
	if !reflect.DeepEqual(v.Indices(), []uint64{0, 1}) {
		t.Fatalf("indices = %v", v.Indices())
	}
}

func TestSliceProjection(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	v, err := Run(ctx, ds, "SELECT images[2:4, 0:3] as crop FROM q LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	crop, err := v.At(ctx, 0, "crop")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crop.Shape(), []int{2, 3}) {
		t.Fatalf("crop shape = %v", crop.Shape())
	}
	// Value check against direct read.
	full, _ := ds.Tensor("images").At(ctx, 0)
	want, _ := full.Slice(tensor.Range{Start: 2, Stop: 4}, tensor.Range{Start: 0, Stop: 3})
	if !crop.Equal(want) {
		t.Fatal("crop mismatch")
	}
}

func TestNormalizeProjection(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	v, err := Run(ctx, ds, "SELECT NORMALIZE(boxes, [0, 0, 20, 20]) as nb FROM q LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := v.At(ctx, 0, "nb")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nb.Float64s(), []float64{0, 0, 0.5, 0.5}) {
		t.Fatalf("normalized = %v", nb.Float64s())
	}
}

func TestArithmeticAndBuiltins(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	cases := []struct {
		expr string
		want float64
	}{
		{"labels + 1", 1},
		{"labels * 2 + 3", 3},
		{"-labels", 0},
		{"MEAN(images)", meanOfImage0(t, ds)},
		{"MAX(boxes)", 10},
		{"MIN(boxes)", 0},
		{"SUM([1, 2, 3])", 6},
		{"ABS(0 - 5)", 5},
		{"CLIP(labels + 10, 0, 4)", 4},
		{"SIZE(images)", 64},
		{"NDIM(images)", 2},
		{"LEN(boxes)", 1},
		{"ROW()", 0},
		{"DOT([1,2],[3,4])", 11},
		{"10 % 3", 1},
	}
	for _, c := range cases {
		v, err := Run(ctx, ds, "SELECT "+c.expr+" as out FROM q LIMIT 1")
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		arr, err := v.At(ctx, 0, "out")
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		got, _ := arr.Item()
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func meanOfImage0(t *testing.T, ds *core.Dataset) float64 {
	arr, err := ds.Tensor("images").At(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return arr.Mean()
}

func TestShapePushdownAvoidsChunkIO(t *testing.T) {
	ctx := context.Background()
	inner := storage.NewMemory()
	count := storage.NewCounting(inner)
	ds, err := core.Create(ctx, count, "shapes")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: smallBounds})
	for i := 0; i < 30; i++ {
		dim := 4
		if i%2 == 0 {
			dim = 6
		}
		tr.Append(ctx, tensor.MustNew(tensor.UInt8, dim, dim))
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	count.Reset()
	v, err := Run(ctx, ds, "SELECT SHAPE(x)[0] as h FROM shapes WHERE SHAPE(x)[0] == 6")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 15 {
		t.Fatalf("rows = %d", v.Len())
	}
	if snap := count.Snapshot(); snap.Gets+snap.RangeGets != 0 {
		t.Fatalf("shape-only filter did %d chunk reads; want 0 (pushdown)", snap.Gets+snap.RangeGets)
	}

	// Plan marks the pushdown.
	q, _ := Parse("SELECT x FROM shapes WHERE SHAPE(x)[0] == 6")
	plan, _ := Compile(q)
	if !strings.Contains(plan.Explain(), "shape-encoder pushdown") {
		t.Fatalf("explain missing pushdown note:\n%s", plan.Explain())
	}
}

func TestVersionedQuery(t *testing.T) {
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "versions")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	for i := 0; i < 3; i++ {
		x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i)))
	}
	c1, _ := ds.Commit(ctx, "three")
	for i := 3; i < 6; i++ {
		x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i)))
	}
	ds.Flush(ctx)

	v, err := Run(ctx, ds, `SELECT x FROM versions VERSION "`+c1+`"`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("rows at %s = %d, want 3", c1, v.Len())
	}
	// Current head sees all six.
	v, err = Run(ctx, ds, "SELECT x FROM versions")
	if err != nil || v.Len() != 6 {
		t.Fatalf("rows at head = %d, %v", v.Len(), err)
	}
	if _, err := Run(ctx, ds, `SELECT x FROM versions VERSION "nope"`); err == nil {
		t.Fatal("unknown version should error")
	}
}

func TestSampleByIsWeightedAndDeterministic(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	// Weight label-0 rows at zero: they must never appear.
	q := "SELECT labels FROM q SAMPLE BY labels"
	v1, err := Run(ctx, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labelsOf(t, v1) {
		if l == 0 {
			t.Fatal("zero-weight row sampled")
		}
	}
	v2, err := Run(ctx, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1.Indices(), v2.Indices()) {
		t.Fatal("sampling must be deterministic per query text")
	}
}

func TestContains(t *testing.T) {
	ds := queryDataset(t)
	v, err := Run(context.Background(), ds, "SELECT labels FROM q WHERE CONTAINS(SHAPE(images), 8)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 10 {
		t.Fatalf("rows = %d", v.Len())
	}
}

func TestExecErrors(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	for _, src := range []string{
		"SELECT nosuch FROM q",
		"SELECT labels FROM q WHERE nosuch == 1",
		"SELECT labels FROM q ORDER BY images", // non-scalar key
		"SELECT UNKNOWN_FN(labels) FROM q",
		"SELECT labels as a, boxes as a FROM q", // duplicate alias
	} {
		if _, err := Run(ctx, ds, src); err == nil {
			t.Errorf("Run(%q) should error", src)
		}
	}
}

func TestRunFullFig5StyleQuery(t *testing.T) {
	ds := queryDataset(t)
	ctx := context.Background()
	src := `SELECT
		images[0:4, 0:4] as crop,
		NORMALIZE(boxes, [0, 0, 8, 8]) as box,
		labels
	FROM q
	WHERE IOU(boxes, "training/boxes") > 0.5
	ORDER BY IOU(boxes, "training/boxes")
	ARRANGE BY labels`
	v, err := Run(ctx, ds, src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() == 0 {
		t.Fatal("query returned no rows")
	}
	row, err := v.Row(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row["crop"].Shape(), []int{4, 4}) {
		t.Fatalf("crop shape = %v", row["crop"].Shape())
	}
	if !reflect.DeepEqual(row["box"].Shape(), []int{1, 4}) {
		t.Fatalf("box shape = %v", row["box"].Shape())
	}
}
