package tql

import (
	"fmt"
	"strings"
)

// Expr is a TQL expression node.
type Expr interface {
	String() string
}

// NumberLit is a numeric literal.
type NumberLit float64

func (n NumberLit) String() string { return trimFloat(float64(n)) }

// StringLit is a quoted string. In array-function argument position a
// string may name a tensor path (the paper's IOU(boxes, "training/boxes")).
type StringLit string

func (s StringLit) String() string { return fmt.Sprintf("%q", string(s)) }

// BoolLit is TRUE or FALSE.
type BoolLit bool

func (b BoolLit) String() string {
	if b {
		return "TRUE"
	}
	return "FALSE"
}

// Ident references a tensor (or group path) by name.
type Ident string

func (i Ident) String() string { return string(i) }

// ArrayLit is an inline array [e1, e2, ...].
type ArrayLit []Expr

func (a ArrayLit) String() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Unary is a prefix operator application (-x, NOT x).
type Unary struct {
	Op string
	X  Expr
}

func (u Unary) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Binary is an infix operator application.
type Binary struct {
	Op   string
	L, R Expr
}

func (b Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Call is a function invocation.
type Call struct {
	Name string
	Args []Expr
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// IndexSpec is one axis selector inside brackets: a point index or a slice.
type IndexSpec struct {
	// Slice marks lo:hi form; Point holds a single index otherwise.
	Slice  bool
	Point  Expr
	Lo, Hi Expr // nil = open bound
}

func (s IndexSpec) String() string {
	if !s.Slice {
		return s.Point.String()
	}
	lo, hi := "", ""
	if s.Lo != nil {
		lo = s.Lo.String()
	}
	if s.Hi != nil {
		hi = s.Hi.String()
	}
	return lo + ":" + hi
}

// Index is NumPy-style indexing/slicing: x[a:b, c, :] (§4.4).
type Index struct {
	X     Expr
	Specs []IndexSpec
}

func (ix Index) String() string {
	parts := make([]string, len(ix.Specs))
	for i, s := range ix.Specs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("%s[%s]", ix.X, strings.Join(parts, ", "))
}

// Selector is one SELECT output: an expression with an optional alias.
type Selector struct {
	Expr  Expr
	Alias string
}

func (s Selector) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s as %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// Query is a parsed TQL statement.
type Query struct {
	// Star selects all visible tensors (SELECT *).
	Star      bool
	Selectors []Selector
	// From names the dataset (informational; execution binds a Dataset).
	From string
	// Where filters rows.
	Where Expr
	// GroupBy sorts rows so equal keys are adjacent.
	GroupBy Expr
	// OrderBy sorts rows by key; OrderDesc reverses.
	OrderBy   Expr
	OrderDesc bool
	// ArrangeBy interleaves key groups round-robin, balancing the stream
	// across classes (§4.4, Fig 5 "ARRANGE BY labels").
	ArrangeBy Expr
	// SampleBy draws a weighted sample of the surviving rows.
	SampleBy Expr
	// Limit < 0 means no limit.
	Limit  int
	Offset int
	// Version pins the query to a commit (§4.4 versioned queries).
	Version string
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// String reconstructs a canonical query text.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Star {
		sb.WriteString("*")
	} else {
		parts := make([]string, len(q.Selectors))
		for i, s := range q.Selectors {
			parts[i] = s.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	if q.From != "" {
		sb.WriteString(" FROM " + q.From)
	}
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.String())
	}
	if q.GroupBy != nil {
		sb.WriteString(" GROUP BY " + q.GroupBy.String())
	}
	if q.OrderBy != nil {
		sb.WriteString(" ORDER BY " + q.OrderBy.String())
		if q.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if q.ArrangeBy != nil {
		sb.WriteString(" ARRANGE BY " + q.ArrangeBy.String())
	}
	if q.SampleBy != nil {
		sb.WriteString(" SAMPLE BY " + q.SampleBy.String())
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", q.Offset)
	}
	if q.Version != "" {
		fmt.Fprintf(&sb, " VERSION %q", q.Version)
	}
	return sb.String()
}
