package tql

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// evalCall dispatches TQL's builtin function library — the "large set of
// convenience functions to work with arrays" of §4.4, including the
// user-visible IOU and NORMALIZE from the paper's Fig 5 example.
func evalCall(e *env, c Call) (Value, error) {
	switch c.Name {
	case "SHAPE":
		return builtinShape(e, c)
	case "NDIM":
		shape, err := callShape(e, c)
		if err != nil {
			return Value{}, err
		}
		return numVal(float64(len(shape))), nil
	case "LEN":
		shape, err := callShape(e, c)
		if err != nil {
			return Value{}, err
		}
		if len(shape) == 0 {
			return numVal(1), nil
		}
		return numVal(float64(shape[0])), nil
	case "SIZE":
		shape, err := callShape(e, c)
		if err != nil {
			return Value{}, err
		}
		n := 1
		for _, d := range shape {
			n *= d
		}
		return numVal(float64(n)), nil
	case "ROW":
		if len(c.Args) != 0 {
			return Value{}, fmt.Errorf("tql: ROW takes no arguments")
		}
		return numVal(float64(e.row)), nil
	case "TEXT":
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		return strVal(arr[0].AsString()), nil
	case "MEAN", "SUM", "MIN", "MAX", "L2", "ANY", "ALL":
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		a := arr[0]
		switch c.Name {
		case "MEAN":
			return numVal(a.Mean()), nil
		case "SUM":
			return numVal(a.Sum()), nil
		case "MIN":
			return numVal(a.Min()), nil
		case "MAX":
			return numVal(a.Max()), nil
		case "L2":
			return numVal(a.L2()), nil
		case "ANY":
			return boolVal(a.Any()), nil
		case "ALL":
			return boolVal(a.All()), nil
		}
	case "ABS":
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		return arrVal(arr[0].Map(math.Abs)), nil
	case "SQRT":
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		return arrVal(arr[0].Map(math.Sqrt)), nil
	case "CLIP":
		if len(c.Args) != 3 {
			return Value{}, fmt.Errorf("tql: CLIP(x, lo, hi) takes 3 arguments")
		}
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		lo, err := argNumber(e, c, 1)
		if err != nil {
			return Value{}, err
		}
		hi, err := argNumber(e, c, 2)
		if err != nil {
			return Value{}, err
		}
		return arrVal(arr[0].Clip(lo, hi)), nil
	case "CONTAINS":
		if len(c.Args) != 2 {
			return Value{}, fmt.Errorf("tql: CONTAINS(array, value) takes 2 arguments")
		}
		arr, err := argArray(e, c, 0, 1)
		if err != nil {
			return Value{}, err
		}
		v, err := argNumber(e, c, 1)
		if err != nil {
			return Value{}, err
		}
		for _, f := range arr[0].Float64s() {
			if f == v {
				return boolVal(true), nil
			}
		}
		return boolVal(false), nil
	case "DOT":
		arrs, err := argArray(e, c, 0, 2)
		if err != nil {
			return Value{}, err
		}
		d, err := arrs[0].Dot(arrs[1])
		if err != nil {
			return Value{}, err
		}
		return numVal(d), nil
	case "COSINE_SIMILARITY":
		arrs, err := argArray(e, c, 0, 2)
		if err != nil {
			return Value{}, err
		}
		cs, err := arrs[0].CosineSimilarity(arrs[1])
		if err != nil {
			return Value{}, err
		}
		return numVal(cs), nil
	case "IOU":
		arrs, err := argArray(e, c, 0, 2)
		if err != nil {
			return Value{}, err
		}
		v, err := iou(arrs[0], arrs[1])
		if err != nil {
			return Value{}, err
		}
		return numVal(v), nil
	case "NORMALIZE":
		arrs, err := argArray(e, c, 0, 2)
		if err != nil {
			return Value{}, err
		}
		out, err := normalizeBoxes(arrs[0], arrs[1])
		if err != nil {
			return Value{}, err
		}
		return arrVal(out), nil
	}
	return Value{}, fmt.Errorf("tql: unknown function %q", c.Name)
}

// callShape resolves the shape of the single argument, through the shape
// encoder when the argument is a bare tensor reference (no chunk IO). An
// env with rawShapes set skips the encoder and measures the decoded sample
// instead, so tests and benchmarks can cross-check the pushdown.
func callShape(e *env, c Call) ([]int, error) {
	if len(c.Args) != 1 {
		return nil, fmt.Errorf("tql: %s takes 1 argument", c.Name)
	}
	if id, ok := c.Args[0].(Ident); ok && !e.rawShapes {
		return e.shapeOf(string(id))
	}
	v, err := evalExpr(e, c.Args[0])
	if err != nil {
		return nil, err
	}
	arr, err := v.AsArray()
	if err != nil {
		return nil, err
	}
	return arr.Shape(), nil
}

func builtinShape(e *env, c Call) (Value, error) {
	shape, err := callShape(e, c)
	if err != nil {
		return Value{}, err
	}
	vals := make([]float64, len(shape))
	for i, d := range shape {
		vals[i] = float64(d)
	}
	arr, err := tensor.FromFloat64s(tensor.Int64, []int{len(vals)}, vals)
	if err != nil {
		return Value{}, err
	}
	return arrVal(arr), nil
}

// argArray evaluates n array arguments starting at index start; a string
// argument resolves as a tensor reference, supporting the paper's
// IOU(boxes, "training/boxes") idiom.
func argArray(e *env, c Call, start, n int) ([]*tensor.NDArray, error) {
	if len(c.Args) < start+n {
		return nil, fmt.Errorf("tql: %s needs at least %d arguments", c.Name, start+n)
	}
	out := make([]*tensor.NDArray, 0, n)
	for i := start; i < start+n; i++ {
		if s, ok := c.Args[i].(StringLit); ok {
			arr, err := e.lookupTensor(string(s))
			if err != nil {
				return nil, err
			}
			out = append(out, arr)
			continue
		}
		v, err := evalExpr(e, c.Args[i])
		if err != nil {
			return nil, err
		}
		arr, err := v.AsArray()
		if err != nil {
			return nil, err
		}
		out = append(out, arr)
	}
	return out, nil
}

func argNumber(e *env, c Call, i int) (float64, error) {
	v, err := evalExpr(e, c.Args[i])
	if err != nil {
		return 0, err
	}
	return v.AsNumber()
}

// iou computes the mean best intersection-over-union between two box sets.
// Boxes are [x, y, w, h] rows ([N,4] or a single [4]); for each box in a,
// the best IoU against b is found and the mean over a is returned — the
// usual detection-quality measure behind the paper's Fig 5 example.
func iou(a, b *tensor.NDArray) (float64, error) {
	ab, err := boxRows(a)
	if err != nil {
		return 0, err
	}
	bb, err := boxRows(b)
	if err != nil {
		return 0, err
	}
	if len(ab) == 0 || len(bb) == 0 {
		return 0, nil
	}
	var total float64
	for _, ra := range ab {
		best := 0.0
		for _, rb := range bb {
			if v := pairIOU(ra, rb); v > best {
				best = v
			}
		}
		total += best
	}
	return total / float64(len(ab)), nil
}

func boxRows(a *tensor.NDArray) ([][4]float64, error) {
	vals := a.Float64s()
	switch a.NDim() {
	case 1:
		if a.Len() != 4 {
			return nil, fmt.Errorf("tql: box vector must have 4 elements, got %d", a.Len())
		}
		return [][4]float64{{vals[0], vals[1], vals[2], vals[3]}}, nil
	case 2:
		if a.Shape()[1] != 4 {
			return nil, fmt.Errorf("tql: box matrix must be [N,4], got %v", a.Shape())
		}
		out := make([][4]float64, a.Shape()[0])
		for i := range out {
			copy(out[i][:], vals[i*4:(i+1)*4])
		}
		return out, nil
	}
	return nil, fmt.Errorf("tql: boxes must be 1-d or 2-d, got %d-d", a.NDim())
}

func pairIOU(a, b [4]float64) float64 {
	ax1, ay1, ax2, ay2 := a[0], a[1], a[0]+a[2], a[1]+a[3]
	bx1, by1, bx2, by2 := b[0], b[1], b[0]+b[2], b[1]+b[3]
	ix := math.Max(0, math.Min(ax2, bx2)-math.Max(ax1, bx1))
	iy := math.Max(0, math.Min(ay2, by2)-math.Max(ay1, by1))
	inter := ix * iy
	union := a[2]*a[3] + b[2]*b[3] - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// normalizeBoxes rescales [x,y,w,h] boxes into the coordinate system of a
// crop region [rx, ry, rw, rh] — the paper's NORMALIZE(boxes, [100, 100,
// 400, 400]) companion to image cropping.
func normalizeBoxes(boxes, region *tensor.NDArray) (*tensor.NDArray, error) {
	if region.Len() != 4 {
		return nil, fmt.Errorf("tql: NORMALIZE region must have 4 elements")
	}
	r := region.Float64s()
	rx, ry, rw, rh := r[0], r[1], r[2], r[3]
	if rw == 0 || rh == 0 {
		return nil, fmt.Errorf("tql: NORMALIZE region has zero extent")
	}
	rows, err := boxRows(boxes)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, 0, len(rows)*4)
	for _, b := range rows {
		vals = append(vals, (b[0]-rx)/rw, (b[1]-ry)/rh, b[2]/rw, b[3]/rh)
	}
	shape := []int{len(rows), 4}
	if boxes.NDim() == 1 {
		shape = []int{4}
	}
	return tensor.FromFloat64s(tensor.Float64, shape, vals)
}
