package tql

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// evalExpr evaluates an expression for one row.
func evalExpr(e *env, x Expr) (Value, error) {
	switch n := x.(type) {
	case NumberLit:
		return numVal(float64(n)), nil
	case StringLit:
		return strVal(string(n)), nil
	case BoolLit:
		return boolVal(bool(n)), nil
	case Ident:
		arr, err := e.lookupTensor(string(n))
		if err != nil {
			return Value{}, err
		}
		return arrVal(arr), nil
	case ArrayLit:
		vals := make([]float64, len(n))
		for i, el := range n {
			v, err := evalExpr(e, el)
			if err != nil {
				return Value{}, err
			}
			f, err := v.AsNumber()
			if err != nil {
				return Value{}, err
			}
			vals[i] = f
		}
		arr, err := tensor.FromFloat64s(tensor.Float64, []int{len(vals)}, vals)
		if err != nil {
			return Value{}, err
		}
		return arrVal(arr), nil
	case Unary:
		return evalUnary(e, n)
	case Binary:
		return evalBinary(e, n)
	case Call:
		return evalCall(e, n)
	case Index:
		return evalIndex(e, n)
	}
	return Value{}, fmt.Errorf("tql: unsupported expression %T", x)
}

func evalUnary(e *env, u Unary) (Value, error) {
	v, err := evalExpr(e, u.X)
	if err != nil {
		return Value{}, err
	}
	switch u.Op {
	case "-":
		if v.kind == kindArr {
			return arrVal(v.arr.Map(func(x float64) float64 { return -x })), nil
		}
		f, err := v.AsNumber()
		if err != nil {
			return Value{}, err
		}
		return numVal(-f), nil
	case "NOT":
		return boolVal(!v.IsTruthy()), nil
	}
	return Value{}, fmt.Errorf("tql: unknown unary operator %q", u.Op)
}

func evalBinary(e *env, b Binary) (Value, error) {
	// Short-circuit logic.
	switch b.Op {
	case "AND":
		l, err := evalExpr(e, b.L)
		if err != nil {
			return Value{}, err
		}
		if !l.IsTruthy() {
			return boolVal(false), nil
		}
		r, err := evalExpr(e, b.R)
		if err != nil {
			return Value{}, err
		}
		return boolVal(r.IsTruthy()), nil
	case "OR":
		l, err := evalExpr(e, b.L)
		if err != nil {
			return Value{}, err
		}
		if l.IsTruthy() {
			return boolVal(true), nil
		}
		r, err := evalExpr(e, b.R)
		if err != nil {
			return Value{}, err
		}
		return boolVal(r.IsTruthy()), nil
	}
	l, err := evalExpr(e, b.L)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(e, b.R)
	if err != nil {
		return Value{}, err
	}
	switch b.Op {
	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, l, r)
	case "==", "!=", "<", "<=", ">", ">=":
		return evalCompare(b.Op, l, r)
	}
	return Value{}, fmt.Errorf("tql: unknown operator %q", b.Op)
}

func evalArith(op string, l, r Value) (Value, error) {
	// Array arithmetic broadcasts scalars (§4.4 numeric computation).
	if l.kind == kindArr || r.kind == kindArr {
		la, err := l.AsArray()
		if err != nil {
			return Value{}, err
		}
		ra, err := r.AsArray()
		if err != nil {
			return Value{}, err
		}
		var out *tensor.NDArray
		switch op {
		case "+":
			out, err = la.Add(ra)
		case "-":
			out, err = la.Sub(ra)
		case "*":
			out, err = la.Mul(ra)
		case "/":
			out, err = la.Div(ra)
		case "%":
			return Value{}, fmt.Errorf("tql: %% is not defined on arrays")
		}
		if err != nil {
			return Value{}, err
		}
		return arrVal(out), nil
	}
	lf, err := l.AsNumber()
	if err != nil {
		return Value{}, err
	}
	rf, err := r.AsNumber()
	if err != nil {
		return Value{}, err
	}
	switch op {
	case "+":
		return numVal(lf + rf), nil
	case "-":
		return numVal(lf - rf), nil
	case "*":
		return numVal(lf * rf), nil
	case "/":
		return numVal(lf / rf), nil
	case "%":
		return numVal(math.Mod(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("tql: unknown arithmetic operator %q", op)
}

func evalCompare(op string, l, r Value) (Value, error) {
	if l.kind == kindStr && r.kind == kindStr {
		switch op {
		case "==":
			return boolVal(l.str == r.str), nil
		case "!=":
			return boolVal(l.str != r.str), nil
		case "<":
			return boolVal(l.str < r.str), nil
		case "<=":
			return boolVal(l.str <= r.str), nil
		case ">":
			return boolVal(l.str > r.str), nil
		case ">=":
			return boolVal(l.str >= r.str), nil
		}
	}
	lf, err := l.AsNumber()
	if err != nil {
		return Value{}, err
	}
	rf, err := r.AsNumber()
	if err != nil {
		return Value{}, err
	}
	switch op {
	case "==":
		return boolVal(lf == rf), nil
	case "!=":
		return boolVal(lf != rf), nil
	case "<":
		return boolVal(lf < rf), nil
	case "<=":
		return boolVal(lf <= rf), nil
	case ">":
		return boolVal(lf > rf), nil
	case ">=":
		return boolVal(lf >= rf), nil
	}
	return Value{}, fmt.Errorf("tql: unknown comparison %q", op)
}

func evalIndex(e *env, ix Index) (Value, error) {
	base, err := evalExpr(e, ix.X)
	if err != nil {
		return Value{}, err
	}
	arr, err := base.AsArray()
	if err != nil {
		return Value{}, err
	}
	// Leading point indices reduce rank via Index; slices map to ranges.
	cur := arr
	var ranges []tensor.Range
	pointPrefix := true
	for _, spec := range ix.Specs {
		if !spec.Slice && pointPrefix && len(ranges) == 0 {
			v, err := evalExpr(e, spec.Point)
			if err != nil {
				return Value{}, err
			}
			f, err := v.AsNumber()
			if err != nil {
				return Value{}, err
			}
			cur, err = cur.Index(int(f))
			if err != nil {
				return Value{}, err
			}
			continue
		}
		pointPrefix = false
		r, err := specToRange(e, spec)
		if err != nil {
			return Value{}, err
		}
		ranges = append(ranges, r)
	}
	if len(ranges) > 0 {
		out, err := cur.Slice(ranges...)
		if err != nil {
			return Value{}, err
		}
		return arrVal(out), nil
	}
	if cur.NDim() == 0 {
		v, err := cur.Item()
		if err != nil {
			return Value{}, err
		}
		return numVal(v), nil
	}
	return arrVal(cur), nil
}

func specToRange(e *env, spec IndexSpec) (tensor.Range, error) {
	if !spec.Slice {
		v, err := evalExpr(e, spec.Point)
		if err != nil {
			return tensor.Range{}, err
		}
		f, err := v.AsNumber()
		if err != nil {
			return tensor.Range{}, err
		}
		// A point in the middle of a slice chain keeps the axis with
		// size 1 (close enough to NumPy for TQL purposes).
		return tensor.Range{Start: int(f), Stop: int(f) + 1}, nil
	}
	r := tensor.Range{Start: 0, Stop: tensor.End}
	if spec.Lo != nil {
		v, err := evalExpr(e, spec.Lo)
		if err != nil {
			return tensor.Range{}, err
		}
		f, err := v.AsNumber()
		if err != nil {
			return tensor.Range{}, err
		}
		r.Start = int(f)
	}
	if spec.Hi != nil {
		v, err := evalExpr(e, spec.Hi)
		if err != nil {
			return tensor.Range{}, err
		}
		f, err := v.AsNumber()
		if err != nil {
			return tensor.Range{}, err
		}
		r.Stop = int(f)
	}
	return r, nil
}
