// Package tql implements the Tensor Query Language (§4.4): a SQL dialect
// extended with NumPy-style multi-dimensional indexing, numeric array
// functions, rebalancing (ARRANGE BY), weighted sampling (SAMPLE BY) and
// versioned queries (VERSION), compiled to a logical plan and executed
// directly against Tensor Storage Format datasets. Query results are views
// (repro/internal/view) that stream to the dataloader or materialize to a
// fresh dataset.
//
// # Execution model
//
// Queries run on a chunk-partitioned parallel scan engine (ExecuteWith,
// Options.Workers). The row space is partitioned along the chunk
// boundaries of the first tensor the filter references, partitions are
// evaluated by a bounded worker pool — each worker reusing one environment
// whose per-tensor ScanReaders fetch and decode every chunk it owns once —
// and per-partition results merge positionally, so results are identical
// at any worker count. A WHERE clause's leading run of shape-only
// conjuncts is answered entirely from the shape encoder with zero chunk IO
// (shape-encoder pushdown), with the remainder evaluated only over the
// pushdown's surviving rows — in textual order, so AND short-circuit
// guards keep protecting later conjuncts. Compile renders these stages; for
//
//	SELECT images FROM ds WHERE SHAPE(images)[0] > 100 AND MEAN(images) > 50
//
// Explain prints:
//
//	scan ds [chunk-partitioned]
//	prefilter (SHAPE(images)[0] > 100) [shape-encoder pushdown: no chunk IO]
//	filter (MEAN(images) > 50) [parallel chunk scan]
//	project images
//
// while a fully shape-only WHERE compiles to a single
// "filter ... [shape-encoder pushdown: no chunk IO]" stage.
package tql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords recognized case-insensitively; stored upper-case.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "GROUP": true,
	"ARRANGE": true, "BY": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"ASC": true, "DESC": true, "AND": true, "OR": true, "NOT": true,
	"SAMPLE": true, "VERSION": true, "TRUE": true, "FALSE": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex splits a query string into tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			l.ident()
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.str(c); err != nil {
				return nil, err
			}
		default:
			if err := l.op(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '/'
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		text = strings.ToUpper(text)
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) number() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("tql: malformed number at %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("tql: unterminated string at %d", start)
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, ">=": true, "<=": true,
}

func (l *lexer) op() error {
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.tokens = append(l.tokens, token{kind: tokOp, text: l.src[l.pos : l.pos+2], pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', '[', ']', ',', ':':
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("tql: unexpected character %q at %d", c, l.pos)
}
