package tql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles a TQL statement into a Query AST.
func Parse(src string) (*Query, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("tql: unexpected %q at position %d", p.cur().text, p.cur().pos)
	}
	return q, nil
}

type parser struct {
	tokens []token
	i      int
}

func (p *parser) cur() token { return p.tokens[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool {
	return p.at(tokIdent, kw)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("tql: expected %q, found %q at position %d", text, p.cur().text, p.cur().pos)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("tql: expected %s, found %q at position %d", kw, p.cur().text, p.cur().pos)
	}
	p.advance()
	return nil
}

// query := SELECT selectors [FROM name] [WHERE e] [GROUP BY e]
//
//	[ORDER BY e [ASC|DESC]] [ARRANGE BY e] [SAMPLE BY e]
//	[LIMIT n [OFFSET n]] [VERSION str]
func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.at(tokOp, "*") {
		p.advance()
		q.Star = true
	} else {
		for {
			sel, err := p.selector()
			if err != nil {
				return nil, err
			}
			q.Selectors = append(q.Selectors, sel)
			if !p.at(tokOp, ",") {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("FROM") {
		p.advance()
		switch {
		case p.cur().kind == tokIdent && !keywords[p.cur().text]:
			q.From = p.advance().text
		case p.cur().kind == tokString:
			q.From = p.advance().text
		default:
			return nil, fmt.Errorf("tql: expected dataset name after FROM at position %d", p.cur().pos)
		}
	}
	if p.atKeyword("WHERE") {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.GroupBy = e
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.OrderBy = e
		if p.atKeyword("ASC") {
			p.advance()
		} else if p.atKeyword("DESC") {
			p.advance()
			q.OrderDesc = true
		}
	}
	if p.atKeyword("ARRANGE") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.ArrangeBy = e
	}
	if p.atKeyword("SAMPLE") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.SampleBy = e
	}
	if p.atKeyword("LIMIT") {
		p.advance()
		n, err := p.integer()
		if err != nil {
			return nil, err
		}
		q.Limit = n
		if p.atKeyword("OFFSET") {
			p.advance()
			off, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Offset = off
		}
	}
	if p.atKeyword("VERSION") {
		p.advance()
		if p.cur().kind != tokString {
			return nil, fmt.Errorf("tql: expected version string at position %d", p.cur().pos)
		}
		q.Version = p.advance().text
	}
	return q, nil
}

func (p *parser) integer() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, fmt.Errorf("tql: expected integer at position %d", p.cur().pos)
	}
	t := p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("tql: %q is not an integer", t.text)
	}
	return n, nil
}

func (p *parser) selector() (Selector, error) {
	e, err := p.expr()
	if err != nil {
		return Selector{}, err
	}
	sel := Selector{Expr: e}
	if p.atKeyword("AS") {
		p.advance()
		if p.cur().kind != tokIdent || keywords[p.cur().text] {
			return Selector{}, fmt.Errorf("tql: expected alias at position %d", p.cur().pos)
		}
		sel.Alias = p.advance().text
	}
	return sel, nil
}

// Expression precedence: OR < AND < NOT < comparison < additive <
// multiplicative < unary < postfix < primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

var comparisonOps = map[string]bool{"==": true, "=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp && comparisonOps[p.cur().text] {
		op := p.advance().text
		if op == "=" {
			op = "=="
		}
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.advance().text
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.advance().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.at(tokOp, "-") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "[") {
		p.advance()
		var specs []IndexSpec
		for {
			spec, err := p.indexSpec()
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
			if p.at(tokOp, ",") {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, "]"); err != nil {
			return nil, err
		}
		x = Index{X: x, Specs: specs}
	}
	return x, nil
}

// indexSpec := expr | [expr] ':' [expr]
func (p *parser) indexSpec() (IndexSpec, error) {
	var lo Expr
	if !p.at(tokOp, ":") {
		e, err := p.expr()
		if err != nil {
			return IndexSpec{}, err
		}
		lo = e
	}
	if p.at(tokOp, ":") {
		p.advance()
		var hi Expr
		if !p.at(tokOp, ",") && !p.at(tokOp, "]") {
			e, err := p.expr()
			if err != nil {
				return IndexSpec{}, err
			}
			hi = e
		}
		return IndexSpec{Slice: true, Lo: lo, Hi: hi}, nil
	}
	if lo == nil {
		return IndexSpec{}, fmt.Errorf("tql: empty index at position %d", p.cur().pos)
	}
	return IndexSpec{Point: lo}, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("tql: bad number %q", t.text)
		}
		return NumberLit(f), nil
	case t.kind == tokString:
		p.advance()
		return StringLit(t.text), nil
	case t.kind == tokIdent && t.text == "TRUE":
		p.advance()
		return BoolLit(true), nil
	case t.kind == tokIdent && t.text == "FALSE":
		p.advance()
		return BoolLit(false), nil
	case t.kind == tokIdent && !keywords[t.text]:
		p.advance()
		// Function call or identifier.
		if p.at(tokOp, "(") {
			p.advance()
			var args []Expr
			if !p.at(tokOp, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.at(tokOp, ",") {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return Call{Name: strings.ToUpper(t.text), Args: args}, nil
		}
		return Ident(t.text), nil
	case t.kind == tokOp && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokOp && t.text == "[":
		p.advance()
		var elems []Expr
		if !p.at(tokOp, "]") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.at(tokOp, ",") {
					p.advance()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokOp, "]"); err != nil {
			return nil, err
		}
		return ArrayLit(elems), nil
	}
	return nil, fmt.Errorf("tql: unexpected %q at position %d", t.text, t.pos)
}
