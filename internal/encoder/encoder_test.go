package encoder

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chunk"
)

func TestChunkEncoderAppendAndLookup(t *testing.T) {
	e := NewChunkEncoder()
	if e.NumSamples() != 0 || e.NumChunks() != 0 {
		t.Fatal("new encoder not empty")
	}
	// Chunk 0: samples 0..9, chunk 1: 10..14, chunk 2: 15.
	if err := e.Append(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(1, 2); err != nil { // extend current chunk
		t.Fatal(err)
	}
	if err := e.Append(2, 1); err != nil {
		t.Fatal(err)
	}
	if e.NumSamples() != 16 || e.NumChunks() != 3 {
		t.Fatalf("samples=%d chunks=%d", e.NumSamples(), e.NumChunks())
	}
	cases := []struct {
		idx   uint64
		chunk uint64
		local int
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {14, 1, 4}, {15, 2, 0},
	}
	for _, c := range cases {
		id, local, err := e.Lookup(c.idx)
		if err != nil || id != c.chunk || local != c.local {
			t.Errorf("Lookup(%d) = %d,%d,%v; want %d,%d", c.idx, id, local, err, c.chunk, c.local)
		}
	}
	if _, _, err := e.Lookup(16); err == nil {
		t.Fatal("out-of-range lookup should error")
	}
	if err := e.Append(0, 1); err == nil {
		t.Fatal("reopening a closed chunk should error")
	}
	if err := e.Append(3, 0); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestChunkEncoderRanges(t *testing.T) {
	e := NewChunkEncoder()
	e.Append(7, 4)
	e.Append(8, 6)
	first, last, id, err := e.ChunkRange(0)
	if err != nil || first != 0 || last != 3 || id != 7 {
		t.Fatalf("row 0 = [%d,%d] id %d, %v", first, last, id, err)
	}
	first, last, id, err = e.ChunkRange(1)
	if err != nil || first != 4 || last != 9 || id != 8 {
		t.Fatalf("row 1 = [%d,%d] id %d, %v", first, last, id, err)
	}
	if _, _, _, err := e.ChunkRange(2); err == nil {
		t.Fatal("row out of range should error")
	}
	if !reflect.DeepEqual(e.ChunkIDs(), []uint64{7, 8}) {
		t.Fatalf("ChunkIDs = %v", e.ChunkIDs())
	}
}

func TestChunkEncoderReplaceAll(t *testing.T) {
	e := NewChunkEncoder()
	e.Append(0, 100)
	if err := e.ReplaceAll([]uint64{10, 11}, []int{60, 40}); err != nil {
		t.Fatal(err)
	}
	if e.NumSamples() != 100 || e.NumChunks() != 2 {
		t.Fatalf("after replace: samples=%d chunks=%d", e.NumSamples(), e.NumChunks())
	}
	id, local, _ := e.Lookup(75)
	if id != 11 || local != 15 {
		t.Fatalf("Lookup(75) = %d,%d", id, local)
	}
	if err := e.ReplaceAll([]uint64{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := e.ReplaceAll([]uint64{1}, []int{0}); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestChunkEncoderSerialization(t *testing.T) {
	e := NewChunkEncoder()
	e.Append(3, 7)
	e.Append(9, 2)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back ChunkEncoder
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != 9 || back.NumChunks() != 2 {
		t.Fatalf("deserialized: samples=%d chunks=%d", back.NumSamples(), back.NumChunks())
	}
	id, local, _ := back.Lookup(8)
	if id != 9 || local != 1 {
		t.Fatalf("Lookup after round trip = %d,%d", id, local)
	}
	for _, bad := range [][]byte{nil, []byte("XXXX"), blob[:10], append(append([]byte{}, blob...), 0)} {
		var e2 ChunkEncoder
		if err := e2.UnmarshalBinary(bad); err == nil {
			t.Errorf("corrupt blob %d bytes accepted", len(bad))
		}
	}
}

// Property: the RLE encoder agrees with a flat map for random append
// sequences, and row count equals the number of distinct chunks.
func TestChunkEncoderMatchesFlatMap(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewChunkEncoder()
		var flat []uint64 // flat[i] = chunk of sample i
		chunkID := uint64(0)
		for op := 0; op < int(ops)%30+1; op++ {
			count := rng.Intn(5) + 1
			if rng.Intn(3) == 0 {
				chunkID++ // start a new chunk sometimes
			}
			if err := e.Append(chunkID, count); err != nil {
				return false
			}
			for k := 0; k < count; k++ {
				flat = append(flat, chunkID)
			}
		}
		if e.NumSamples() != uint64(len(flat)) {
			return false
		}
		locals := map[uint64]int{}
		for i, want := range flat {
			id, local, err := e.Lookup(uint64(i))
			if err != nil || id != want {
				return false
			}
			if local != locals[id] {
				return false
			}
			locals[id]++
		}
		// Round trip through serialization too.
		blob, err := e.MarshalBinary()
		if err != nil {
			return false
		}
		var back ChunkEncoder
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		return back.NumSamples() == e.NumSamples() && back.NumChunks() == e.NumChunks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTileEncoder(t *testing.T) {
	e := NewTileEncoder()
	layout := chunk.TileLayout{SampleShape: []int{8, 8}, TileShape: []int{4, 4}, Grid: []int{2, 2}}
	entry := TileEntry{Layout: layout, ChunkIDs: []uint64{100, 101, 102, 103}}
	if err := e.Set(5, entry); err != nil {
		t.Fatal(err)
	}
	if err := e.Set(6, TileEntry{Layout: layout, ChunkIDs: []uint64{1}}); err == nil {
		t.Fatal("chunk id count mismatch should error")
	}
	got, ok := e.Get(5)
	if !ok || len(got.ChunkIDs) != 4 {
		t.Fatalf("Get(5) = %+v, %v", got, ok)
	}
	if _, ok := e.Get(4); ok {
		t.Fatal("untiled sample should not be present")
	}
	if e.Len() != 1 || !reflect.DeepEqual(e.Indices(), []uint64{5}) {
		t.Fatalf("Len=%d Indices=%v", e.Len(), e.Indices())
	}

	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back TileEncoder
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	got2, ok := back.Get(5)
	if !ok || !reflect.DeepEqual(got2.ChunkIDs, entry.ChunkIDs) {
		t.Fatalf("round trip = %+v, %v", got2, ok)
	}
	back.Delete(5)
	if back.Len() != 0 {
		t.Fatal("delete failed")
	}
	if err := back.UnmarshalBinary([]byte("{bad")); err == nil {
		t.Fatal("corrupt json should error")
	}
}

func TestSequenceEncoder(t *testing.T) {
	e := NewSequenceEncoder()
	for _, n := range []int{3, 0, 5} {
		if err := e.AppendRow(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AppendRow(-1); err == nil {
		t.Fatal("negative length should error")
	}
	if e.NumRows() != 3 || e.NumItems() != 8 {
		t.Fatalf("rows=%d items=%d", e.NumRows(), e.NumItems())
	}
	cases := []struct{ row, start, end int }{{0, 0, 3}, {1, 3, 3}, {2, 3, 8}}
	for _, c := range cases {
		s, en, err := e.RowRange(c.row)
		if err != nil || s != uint64(c.start) || en != uint64(c.end) {
			t.Errorf("RowRange(%d) = %d,%d,%v", c.row, s, en, err)
		}
	}
	if _, _, err := e.RowRange(3); err == nil {
		t.Fatal("row out of range should error")
	}
	for item, wantRow := range map[uint64]int{0: 0, 2: 0, 3: 2, 7: 2} {
		row, err := e.RowOf(item)
		if err != nil || row != wantRow {
			t.Errorf("RowOf(%d) = %d,%v; want %d", item, row, err, wantRow)
		}
	}
	if _, err := e.RowOf(8); err == nil {
		t.Fatal("item out of range should error")
	}

	blob, _ := e.MarshalBinary()
	var back SequenceEncoder
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != 8 {
		t.Fatalf("round trip items = %d", back.NumItems())
	}
	if err := back.UnmarshalBinary([]byte("[5,3]")); err == nil {
		t.Fatal("non-monotone cum should error")
	}
}

func TestShapeEncoderRLE(t *testing.T) {
	e := NewShapeEncoder()
	// 100 samples of the same shape compress to one row.
	for i := 0; i < 100; i++ {
		e.Append([]int{224, 224, 3})
	}
	if e.NumRows() != 1 || e.NumSamples() != 100 {
		t.Fatalf("rows=%d samples=%d", e.NumRows(), e.NumSamples())
	}
	e.Append([]int{512, 512, 3})
	e.Append([]int{224, 224, 3}) // back to first shape: new run
	if e.NumRows() != 3 || e.NumSamples() != 102 {
		t.Fatalf("rows=%d samples=%d", e.NumRows(), e.NumSamples())
	}
	s, err := e.Get(100)
	if err != nil || !reflect.DeepEqual(s, []int{512, 512, 3}) {
		t.Fatalf("Get(100) = %v, %v", s, err)
	}
	s, _ = e.Get(50)
	if !reflect.DeepEqual(s, []int{224, 224, 3}) {
		t.Fatalf("Get(50) = %v", s)
	}
	if _, err := e.Get(102); err == nil {
		t.Fatal("out of range should error")
	}
}

func TestShapeEncoderSet(t *testing.T) {
	e := NewShapeEncoder()
	for i := 0; i < 10; i++ {
		e.Append([]int{4, 4})
	}
	if err := e.Set(5, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	if e.NumSamples() != 10 {
		t.Fatalf("samples after set = %d", e.NumSamples())
	}
	s, _ := e.Get(5)
	if !reflect.DeepEqual(s, []int{8, 8}) {
		t.Fatalf("Get(5) after set = %v", s)
	}
	s, _ = e.Get(4)
	if !reflect.DeepEqual(s, []int{4, 4}) {
		t.Fatalf("Get(4) after set = %v", s)
	}
	if e.NumRows() != 3 {
		t.Fatalf("rows after split = %d, want 3", e.NumRows())
	}
	if err := e.Set(10, []int{1}); err == nil {
		t.Fatal("set out of range should error")
	}
}

// Property: shape encoder Get agrees with a flat slice of shapes.
func TestShapeEncoderMatchesFlat(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewShapeEncoder()
		var flat [][]int
		shapes := [][]int{{2, 2}, {3, 3}, {2, 2, 3}}
		for i := 0; i < int(n)%50+1; i++ {
			s := shapes[rng.Intn(len(shapes))]
			e.Append(s)
			flat = append(flat, s)
		}
		blob, err := e.MarshalBinary()
		if err != nil {
			return false
		}
		var back ShapeEncoder
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		for i, want := range flat {
			got, err := back.Get(uint64(i))
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkEncoderDuplicateDetectionAfterRestore(t *testing.T) {
	// The O(1) duplicate index must survive every path that replaces the
	// row set: ReplaceAll, UnmarshalBinary, and zero-value encoders.
	e := NewChunkEncoder()
	for id := uint64(0); id < 5; id++ {
		if err := e.Append(id, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Append(2, 1); err == nil {
		t.Fatal("re-opening a closed chunk should fail")
	}

	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back ChunkEncoder
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if err := back.Append(3, 1); err == nil {
		t.Fatal("restored encoder should still reject duplicate chunk ids")
	}
	if err := back.Append(4, 2); err != nil {
		t.Fatalf("extending the most recent chunk: %v", err)
	}
	if err := back.Append(99, 2); err != nil {
		t.Fatalf("appending a fresh chunk: %v", err)
	}

	if err := back.ReplaceAll([]uint64{7, 8}, []int{2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := back.Append(7, 1); err == nil {
		t.Fatal("ReplaceAll ids should be registered as closed")
	}

	var zero ChunkEncoder
	if err := zero.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := zero.Append(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := zero.Append(1, 2); err == nil {
		t.Fatal("zero-value encoder should reject duplicates too")
	}
}

func TestChunkEncoderAppendScales(t *testing.T) {
	// 50k distinct chunks; quadratic appends would take minutes here.
	e := NewChunkEncoder()
	start := time.Now()
	for id := uint64(0); id < 50000; id++ {
		if err := e.Append(id, 2); err != nil {
			t.Fatal(err)
		}
	}
	if e.NumChunks() != 50000 || e.NumSamples() != 100000 {
		t.Fatalf("chunks=%d samples=%d", e.NumChunks(), e.NumSamples())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("50k appends took %s; append is not O(1)", elapsed)
	}
}
