package encoder

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/chunk"
)

// TileEncoder records, for each tiled sample, its tile layout and the chunk
// ids holding each tile in row-major grid order (§3.4). Most samples are not
// tiled, so the encoder is a sparse map keyed by sample index.
type TileEncoder struct {
	entries map[uint64]TileEntry
}

// TileEntry is the tiling record of one sample.
type TileEntry struct {
	Layout   chunk.TileLayout `json:"layout"`
	ChunkIDs []uint64         `json:"chunk_ids"`
}

// NewTileEncoder returns an empty encoder.
func NewTileEncoder() *TileEncoder {
	return &TileEncoder{entries: make(map[uint64]TileEntry)}
}

// Set registers the tiling of sample idx.
func (e *TileEncoder) Set(idx uint64, entry TileEntry) error {
	if got, want := len(entry.ChunkIDs), entry.Layout.NumTiles(); got != want {
		return fmt.Errorf("encoder: %d chunk ids for %d tiles", got, want)
	}
	e.entries[idx] = entry
	return nil
}

// Get returns the tiling record of sample idx, if tiled.
func (e *TileEncoder) Get(idx uint64) (TileEntry, bool) {
	entry, ok := e.entries[idx]
	return entry, ok
}

// Delete removes the record of sample idx (after re-chunking inlined it).
func (e *TileEncoder) Delete(idx uint64) { delete(e.entries, idx) }

// Len returns the number of tiled samples.
func (e *TileEncoder) Len() int { return len(e.entries) }

// Indices lists tiled sample indices in increasing order.
func (e *TileEncoder) Indices() []uint64 {
	out := make([]uint64, 0, len(e.entries))
	for idx := range e.entries {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarshalBinary serializes the encoder (JSON body; entries are sparse and
// small relative to chunk data).
func (e *TileEncoder) MarshalBinary() ([]byte, error) {
	m := make(map[string]TileEntry, len(e.entries))
	for idx, entry := range e.entries {
		m[fmt.Sprint(idx)] = entry
	}
	return json.Marshal(m)
}

// UnmarshalBinary restores a serialized encoder.
func (e *TileEncoder) UnmarshalBinary(data []byte) error {
	var m map[string]TileEntry
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	e.entries = make(map[uint64]TileEntry, len(m))
	for k, entry := range m {
		var idx uint64
		if _, err := fmt.Sscan(k, &idx); err != nil {
			return fmt.Errorf("encoder: bad tile index %q", k)
		}
		e.entries[idx] = entry
	}
	return nil
}

// SequenceEncoder maps sequence rows to flat item ranges for sequence[...]
// tensors (§3.3): row i owns flat items [RowRange(i)). Stored as cumulative
// item counts, one entry per row.
type SequenceEncoder struct {
	cum []uint64 // cum[i] = total items in rows [0, i]
}

// NewSequenceEncoder returns an empty encoder.
func NewSequenceEncoder() *SequenceEncoder { return &SequenceEncoder{} }

// AppendRow registers a row of n items.
func (e *SequenceEncoder) AppendRow(n int) error {
	if n < 0 {
		return fmt.Errorf("encoder: negative sequence length %d", n)
	}
	var base uint64
	if len(e.cum) > 0 {
		base = e.cum[len(e.cum)-1]
	}
	e.cum = append(e.cum, base+uint64(n))
	return nil
}

// NumRows returns the number of sequence rows.
func (e *SequenceEncoder) NumRows() int { return len(e.cum) }

// NumItems returns the total flat item count.
func (e *SequenceEncoder) NumItems() uint64 {
	if len(e.cum) == 0 {
		return 0
	}
	return e.cum[len(e.cum)-1]
}

// RowRange returns the half-open flat item range [start, end) of row i.
func (e *SequenceEncoder) RowRange(i int) (start, end uint64, err error) {
	if i < 0 || i >= len(e.cum) {
		return 0, 0, fmt.Errorf("encoder: sequence row %d out of range (%d rows)", i, len(e.cum))
	}
	if i > 0 {
		start = e.cum[i-1]
	}
	return start, e.cum[i], nil
}

// RowOf returns the row containing flat item idx.
func (e *SequenceEncoder) RowOf(idx uint64) (int, error) {
	if idx >= e.NumItems() {
		return 0, fmt.Errorf("encoder: item %d out of range (%d items)", idx, e.NumItems())
	}
	return sort.Search(len(e.cum), func(i int) bool { return e.cum[i] > idx }), nil
}

// MarshalBinary serializes the encoder.
func (e *SequenceEncoder) MarshalBinary() ([]byte, error) {
	return json.Marshal(e.cum)
}

// UnmarshalBinary restores a serialized encoder.
func (e *SequenceEncoder) UnmarshalBinary(data []byte) error {
	var cum []uint64
	if err := json.Unmarshal(data, &cum); err != nil {
		return err
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			return errors.New("encoder: non-monotone sequence encoder")
		}
	}
	e.cum = cum
	return nil
}

// ShapeEncoder run-length encodes per-sample shapes: (lastIndex, shape)
// rows. It backs the hidden shape tensors the paper uses for fast queries
// (§3.4: "hidden tensors ... preserve shape information for fast queries"):
// WHERE clauses over shapes never touch chunk data.
type ShapeEncoder struct {
	rows []shapeRow
}

type shapeRow struct {
	LastIndex uint64 `json:"last"`
	Shape     []int  `json:"shape"`
}

// NewShapeEncoder returns an empty encoder.
func NewShapeEncoder() *ShapeEncoder { return &ShapeEncoder{} }

// Append registers the shape of the next sample. Equal consecutive shapes
// extend the current run.
func (e *ShapeEncoder) Append(shape []int) {
	if n := len(e.rows); n > 0 && shapeEqual(e.rows[n-1].Shape, shape) {
		e.rows[n-1].LastIndex++
		return
	}
	var last uint64
	if n := len(e.rows); n > 0 {
		last = e.rows[n-1].LastIndex + 1
	}
	e.rows = append(e.rows, shapeRow{LastIndex: last, Shape: append([]int(nil), shape...)})
}

// NumSamples returns the number of registered shapes.
func (e *ShapeEncoder) NumSamples() uint64 {
	if len(e.rows) == 0 {
		return 0
	}
	return e.rows[len(e.rows)-1].LastIndex + 1
}

// NumRows returns the RLE row count.
func (e *ShapeEncoder) NumRows() int { return len(e.rows) }

// Get returns the shape of sample idx.
func (e *ShapeEncoder) Get(idx uint64) ([]int, error) {
	if idx >= e.NumSamples() {
		return nil, fmt.Errorf("encoder: shape of sample %d out of range (%d samples)", idx, e.NumSamples())
	}
	row := sort.Search(len(e.rows), func(i int) bool { return e.rows[i].LastIndex >= idx })
	return append([]int(nil), e.rows[row].Shape...), nil
}

// Set overwrites the shape of sample idx (in-place update support). The
// implementation splits the run containing idx.
func (e *ShapeEncoder) Set(idx uint64, shape []int) error {
	if idx >= e.NumSamples() {
		return fmt.Errorf("encoder: cannot set shape of sample %d (%d samples)", idx, e.NumSamples())
	}
	// Rebuild via flat expansion of affected region; runs are typically
	// short in update-heavy workloads and this keeps the code obviously
	// correct.
	n := e.NumSamples()
	shapes := make([][]int, 0, n)
	for i := uint64(0); i < n; i++ {
		s, _ := e.Get(i)
		shapes = append(shapes, s)
	}
	shapes[idx] = append([]int(nil), shape...)
	e.rows = nil
	for _, s := range shapes {
		e.Append(s)
	}
	return nil
}

// MarshalBinary serializes the encoder.
func (e *ShapeEncoder) MarshalBinary() ([]byte, error) { return json.Marshal(e.rows) }

// UnmarshalBinary restores a serialized encoder.
func (e *ShapeEncoder) UnmarshalBinary(data []byte) error {
	var rows []shapeRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return err
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LastIndex <= rows[i-1].LastIndex {
			return errors.New("encoder: non-monotone shape encoder")
		}
	}
	e.rows = rows
	return nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
