// Package encoder implements the compressed index maps of the Tensor
// Storage Format (§3.4): the chunk encoder mapping sample indices to chunk
// ids, the tile encoder for samples split across spatial tiles, the sequence
// encoder for sequence[...] meta-tensors, and the shape encoder that backs
// fast shape queries without touching chunk data.
//
// The chunk encoder is run-length encoded as (lastIndex, chunkID) rows, the
// representation the paper credits with keeping the per-tensor map at
// ~150MB per 1PB of data: consecutive samples share a chunk, so the map
// grows with the number of chunks, not the number of samples. Lookups are a
// binary search over lastIndex.
package encoder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ChunkEncoder maps sample indices to (chunkID, indexWithinChunk). Rows are
// (lastIndex, chunkID) pairs where lastIndex is the index of the final
// sample stored in chunkID.
type ChunkEncoder struct {
	rows []chunkRow
	// seen indexes registered chunk ids so Append's duplicate check is
	// O(1); the previous full-row scan made N-chunk ingestion O(N²).
	// Lazily rebuilt from rows when nil (zero-value encoders).
	seen map[uint64]struct{}
}

type chunkRow struct {
	lastIndex uint64 // inclusive index of the last sample in this chunk
	chunkID   uint64
}

// NewChunkEncoder returns an empty encoder.
func NewChunkEncoder() *ChunkEncoder {
	return &ChunkEncoder{seen: map[uint64]struct{}{}}
}

// ensureSeen (re)builds the chunk-id index when the encoder was created as
// a zero value or restored without one.
func (e *ChunkEncoder) ensureSeen() {
	if e.seen != nil {
		return
	}
	e.seen = make(map[uint64]struct{}, len(e.rows))
	for _, r := range e.rows {
		e.seen[r.chunkID] = struct{}{}
	}
}

// NumSamples returns the total number of indexed samples.
func (e *ChunkEncoder) NumSamples() uint64 {
	if len(e.rows) == 0 {
		return 0
	}
	return e.rows[len(e.rows)-1].lastIndex + 1
}

// NumChunks returns the number of distinct chunks.
func (e *ChunkEncoder) NumChunks() int { return len(e.rows) }

// NumRows returns the RLE row count (equals NumChunks; exposed for the
// scaling math in DESIGN.md).
func (e *ChunkEncoder) NumRows() int { return len(e.rows) }

// Append registers count more samples appended to chunkID. Appending to the
// most recent chunk extends its row; a new chunkID appends a row. chunkIDs
// must be introduced in increasing order of sample index.
func (e *ChunkEncoder) Append(chunkID uint64, count int) error {
	if count <= 0 {
		return fmt.Errorf("encoder: append count %d must be positive", count)
	}
	if n := len(e.rows); n > 0 && e.rows[n-1].chunkID == chunkID {
		e.rows[n-1].lastIndex += uint64(count)
		return nil
	}
	e.ensureSeen()
	last := uint64(count) - 1
	if n := len(e.rows); n > 0 {
		if _, dup := e.seen[chunkID]; dup {
			return fmt.Errorf("encoder: chunk %d already registered and closed", chunkID)
		}
		last = e.rows[n-1].lastIndex + uint64(count)
	}
	e.rows = append(e.rows, chunkRow{lastIndex: last, chunkID: chunkID})
	e.seen[chunkID] = struct{}{}
	return nil
}

// Lookup returns the chunk holding sample idx and its local index within
// that chunk.
func (e *ChunkEncoder) Lookup(idx uint64) (chunkID uint64, local int, err error) {
	n := e.NumSamples()
	if idx >= n {
		return 0, 0, fmt.Errorf("encoder: sample %d out of range (%d samples)", idx, n)
	}
	row := sort.Search(len(e.rows), func(i int) bool { return e.rows[i].lastIndex >= idx })
	first := uint64(0)
	if row > 0 {
		first = e.rows[row-1].lastIndex + 1
	}
	return e.rows[row].chunkID, int(idx - first), nil
}

// ChunkRange returns the [first, last] sample indices stored in row r.
func (e *ChunkEncoder) ChunkRange(r int) (first, last uint64, chunkID uint64, err error) {
	if r < 0 || r >= len(e.rows) {
		return 0, 0, 0, fmt.Errorf("encoder: row %d out of range", r)
	}
	if r > 0 {
		first = e.rows[r-1].lastIndex + 1
	}
	return first, e.rows[r].lastIndex, e.rows[r].chunkID, nil
}

// ChunkIDs lists all chunk ids in index order.
func (e *ChunkEncoder) ChunkIDs() []uint64 {
	out := make([]uint64, len(e.rows))
	for i, r := range e.rows {
		out[i] = r.chunkID
	}
	return out
}

// ReplaceAll swaps the full mapping, used by the re-chunking optimizer. Rows
// are (chunkID, count) pairs in index order.
func (e *ChunkEncoder) ReplaceAll(chunkIDs []uint64, counts []int) error {
	if len(chunkIDs) != len(counts) {
		return errors.New("encoder: chunkIDs and counts length mismatch")
	}
	rows := make([]chunkRow, 0, len(chunkIDs))
	var last uint64
	for i := range chunkIDs {
		if counts[i] <= 0 {
			return fmt.Errorf("encoder: count %d must be positive", counts[i])
		}
		last += uint64(counts[i])
		rows = append(rows, chunkRow{lastIndex: last - 1, chunkID: chunkIDs[i]})
	}
	e.rows = rows
	e.seen = nil
	e.ensureSeen()
	return nil
}

const chunkEncMagic = "DLCE"

// MarshalBinary serializes the encoder.
func (e *ChunkEncoder) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 8+len(e.rows)*16)
	out = append(out, chunkEncMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(e.rows)))
	for _, r := range e.rows {
		out = binary.LittleEndian.AppendUint64(out, r.lastIndex)
		out = binary.LittleEndian.AppendUint64(out, r.chunkID)
	}
	return out, nil
}

// UnmarshalBinary restores a serialized encoder.
func (e *ChunkEncoder) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || string(data[:4]) != chunkEncMagic {
		return errors.New("encoder: bad chunk encoder blob")
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) != 8+n*16 {
		return fmt.Errorf("encoder: chunk encoder blob length %d != %d rows", len(data), n)
	}
	rows := make([]chunkRow, n)
	for i := 0; i < n; i++ {
		rows[i].lastIndex = binary.LittleEndian.Uint64(data[8+i*16:])
		rows[i].chunkID = binary.LittleEndian.Uint64(data[16+i*16:])
	}
	// Validate monotonicity.
	for i := 1; i < n; i++ {
		if rows[i].lastIndex <= rows[i-1].lastIndex {
			return errors.New("encoder: non-monotone chunk encoder rows")
		}
	}
	e.rows = rows
	e.seen = nil
	e.ensureSeen()
	return nil
}
