// Quickstart: create a dataset, append image/label samples, commit, query,
// and stream batches through the dataloader — the §5 image-classification
// walkthrough end to end on an in-memory store.
package main

import (
	"context"
	"fmt"
	"log"

	deeplake "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// 1. Create a dataset on any storage provider (§3.6). Swap
	// NewMemoryStore for NewFSStore or NewS3SimStore freely.
	store := deeplake.NewMemoryStore()
	ds, err := deeplake.Create(ctx, store, "quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Declare typed tensors (§3.3). The image htype defaults to JPEG
	// sample compression; class_label chunks compress with LZ4 (§5).
	images, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "images", Htype: "image"})
	if err != nil {
		log.Fatal(err)
	}
	labels, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "labels", Htype: "class_label"})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Append 200 synthetic 64x64 images with labels.
	spec := workload.ImageSpec{Height: 64, Width: 64, Channels: 3, Seed: 42}
	for i := 0; i < 200; i++ {
		if err := images.Append(ctx, spec.Image(i)); err != nil {
			log.Fatal(err)
		}
		if err := labels.Append(ctx, workload.Label(42, i, 10)); err != nil {
			log.Fatal(err)
		}
	}
	commit, err := ds.Commit(ctx, "first 200 samples")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d rows, committed as %s\n", ds.Name(), ds.NumRows(), commit)

	// 4. Read back a single sample as an array, and just its shape
	// (shape queries never touch chunk data, §3.4).
	img, err := images.At(ctx, 7)
	if err != nil {
		log.Fatal(err)
	}
	shape, _ := images.Shape(7)
	fmt.Printf("sample 7: %v, shape from encoder %v\n", img, shape)

	// 5. Query with TQL (§4.4): balance classes 0-4 into a view.
	view, err := deeplake.Query(ctx, ds, `
		SELECT images, labels FROM quickstart
		WHERE labels < 5
		ARRANGE BY labels`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query selected %d rows (sparse=%v)\n", view.Len(), view.IsSparse())

	// 6. Stream shuffled batches through the dataloader (§4.6).
	loader := deeplake.NewLoader(view, deeplake.LoaderOptions{
		BatchSize: 16, Shuffle: true, Workers: 4, Seed: 1,
	})
	batches, rows := 0, 0
	for b := range loader.Batches(ctx) {
		batches++
		rows += len(b.Samples)
		if stacked, ok := b.Stacked["images"]; ok && batches == 1 {
			fmt.Printf("first batch stacked images: %v\n", stacked)
		}
	}
	if err := loader.Err(); err != nil {
		log.Fatal(err)
	}
	hits, misses := loader.CacheStats()
	fmt.Printf("streamed %d batches / %d rows (chunk cache: %d hits, %d misses)\n",
		batches, rows, hits, misses)
}
