// ETL demonstrates the §4.1 ingestion path: metadata synced from a
// simulated relational database through the connector protocol, raw images
// attached as linked tensors resolved from an external bucket, a parallel
// transform pipeline deriving an augmented dataset, and materialization
// inlining the links (§4.1, §4.5).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	deeplake "repro"
	"repro/internal/compress"
	"repro/internal/connector"
	"repro/internal/tensor"
	"repro/internal/transform"
	"repro/internal/view"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// An "external bucket" of raw JPEG files, as in §5 step (1).
	extBucket := deeplake.NewMemoryStore()
	jpeg, err := compress.SampleByName("jpeg")
	must(err)
	spec := workload.ImageSpec{Height: 48, Width: 48, Channels: 3, Seed: 77}
	for i := 0; i < 12; i++ {
		img := spec.Image(i)
		s := img.Shape()
		enc, err := jpeg.Encode(img.Bytes(), s[0], s[1], s[2])
		must(err)
		must(extBucket.Put(ctx, fmt.Sprintf("raw/img_%03d.jpg", i), enc))
	}

	// Metadata "already resides in a relational database" (§4.1.1).
	ds, err := deeplake.Create(ctx, deeplake.NewMemoryStore(), "etl-demo")
	must(err)
	rows := make([][]any, 12)
	for i := range rows {
		rows[i] = []any{int64(i), fmt.Sprintf("sample %d caption", i), float64(i%5) / 5}
	}
	stats, err := connector.Sync(ctx, connector.SQLTableSource{
		Table:   "metadata",
		Columns: []string{"id", "caption", "quality"},
		Rows:    rows,
	}, ds, connector.SyncOptions{CreateTensors: true, CommitMessage: "metadata sync"})
	must(err)
	fmt.Printf("connector synced %d records (commit %s)\n", stats.Records, stats.Commit)

	// Attach the raw files as a link[image] tensor (§4.5 linked tensors).
	links, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "images", Htype: "link[image]"})
	must(err)
	for i := 0; i < 12; i++ {
		must(links.AppendLink(ctx, fmt.Sprintf("sim://raw-bucket/raw/img_%03d.jpg", i)))
	}
	must(ds.Flush(ctx))

	resolver := deeplake.NewResolver()
	resolver.Register("sim://raw-bucket", extBucket)

	// A resolved view: links become real pixel arrays on read.
	v := deeplake.NewView(ds, indices(12), []deeplake.Column{
		deeplake.LinkedColumn("images", links, resolver),
		{Name: "caption", Source: "caption"},
		{Name: "quality", Source: "quality"},
	})
	img, err := v.At(ctx, 0, "images")
	must(err)
	fmt.Printf("resolved linked image 0: %v\n", img)

	// Materialize inlines the linked data into an optimal layout (§4.5).
	curated, err := deeplake.Materialize(ctx, v, deeplake.NewMemoryStore(), "etl-materialized")
	must(err)
	fmt.Printf("materialized %q with tensors %v\n", curated.Name(), curated.Tensors())

	// A parallel transform pipeline (§4.1.2): uppercase captions and keep
	// only high-quality rows (one-to-zero-or-one).
	out, err := deeplake.Create(ctx, deeplake.NewMemoryStore(), "etl-transformed")
	must(err)
	_, err = out.CreateTensor(ctx, deeplake.TensorSpec{Name: "caption", Htype: "text"})
	must(err)
	pipeline := transform.Compute(func(in transform.Sample, c *transform.Collector) error {
		q, _ := in["quality"].Item()
		if q < 0.4 {
			return nil // filtered out
		}
		text := strings.ToUpper(in["caption"].AsString())
		c.Emit(transform.Sample{"caption": tensor.FromString(text)})
		return nil
	})
	tstats, err := pipeline.Eval(ctx, transform.FromView(view.All(curated)), out, transform.Options{Workers: 4})
	must(err)
	fmt.Printf("transform kept %d/%d rows\n", tstats.OutputSamples, tstats.InputSamples)
	first, err := out.Tensor("caption").At(ctx, 0)
	must(err)
	fmt.Printf("first transformed caption: %q\n", first.AsString())
}

func indices(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
