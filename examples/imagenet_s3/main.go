// ImageNet-on-S3 reenacts the Fig 9 scenario at laptop scale: an
// ImageNet-like dataset lives on a simulated S3 bucket and a simulated GPU
// trains one epoch three ways — streaming with the Deep Lake dataloader,
// from local storage, and per-file from S3 — printing the resulting
// timelines and GPU utilization (§5.1, §6.4).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	deeplake "repro"
	"repro/internal/gpusim"
	"repro/internal/workload"
)

const (
	numImages = 300
	batchSize = 32
	timeScale = 20 // simulated seconds per wall second
)

func main() {
	ctx := context.Background()

	// Ingest the dataset onto a simulated same-region S3 bucket.
	s3 := deeplake.NewS3SimStore()
	buildDataset(ctx, s3, "imagenet-s3")

	// The same data on "local disk".
	local := deeplake.NewMemoryStore()
	buildDataset(ctx, local, "imagenet-local")

	gpu := gpusim.GPU{ComputePerBatch: 400 * time.Millisecond, TimeScale: timeScale}

	for _, tc := range []struct {
		name  string
		store deeplake.Provider
	}{
		{"local", local},
		{"deeplake-stream-from-s3", s3},
	} {
		ds, err := deeplake.Open(ctx, tc.store)
		must(err)
		loader := deeplake.NewDatasetLoader(ds, deeplake.LoaderOptions{
			BatchSize: batchSize, Workers: 8, Shuffle: true, Seed: 9,
		})
		start := time.Now()
		tl := gpu.Train(ctx, loader, 0)
		fmt.Printf("%-24s epoch %6.2fs (simulated %6.1fs)  gpu-util %5.1f%%  %6.0f img/s\n",
			tc.name, time.Since(start).Seconds(), time.Since(start).Seconds()*timeScale,
			tl.Utilization()*100, tl.RowsPerSec())
	}

	// With an LRU cache chained in front of S3 (§3.6), a second epoch is
	// served almost entirely from memory.
	runCachedEpochs(ctx, s3, gpu)
}

func runCachedEpochs(ctx context.Context, s3 deeplake.Provider, gpu gpusim.GPU) {
	cached := deeplake.WithLRUCache(s3, 1<<30)
	ds, err := deeplake.Open(ctx, cached)
	must(err)
	for epoch := 1; epoch <= 2; epoch++ {
		loader := deeplake.NewDatasetLoader(ds, deeplake.LoaderOptions{BatchSize: batchSize, Workers: 8})
		start := time.Now()
		tl := gpu.Train(ctx, loader, 0)
		fmt.Printf("%-24s epoch %6.2fs  gpu-util %5.1f%%\n",
			fmt.Sprintf("s3+lru-cache (epoch %d)", epoch), time.Since(start).Seconds(), tl.Utilization()*100)
	}
}

func buildDataset(ctx context.Context, store deeplake.Provider, name string) {
	ds, err := deeplake.Create(ctx, store, name)
	must(err)
	images, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "images", Htype: "image"})
	must(err)
	labels, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "labels", Htype: "class_label"})
	must(err)
	spec := workload.ImageSpec{Height: 96, Width: 96, Channels: 3, Seed: 7}
	for i := 0; i < numImages; i++ {
		must(images.Append(ctx, spec.Image(i)))
		must(labels.Append(ctx, workload.Label(7, i, 1000)))
	}
	must(ds.Flush(ctx))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
