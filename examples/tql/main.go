// TQL runs the paper's Fig 5 query: crop images, normalize predicted boxes
// against the crop, filter and order rows by IOU against reference boxes,
// and rebalance by label — then materializes the result into a fresh
// dataset with an optimal streaming layout (§4.4-4.5).
package main

import (
	"context"
	"fmt"
	"log"

	deeplake "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	ds, err := deeplake.Create(ctx, deeplake.NewMemoryStore(), "detection")
	if err != nil {
		log.Fatal(err)
	}

	images, _ := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "images", Htype: "image"})
	boxes, _ := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "boxes", Htype: "bbox"})
	labels, _ := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "labels", Htype: "class_label"})
	// The group "training" holds reference annotations (§3.1 groups).
	refBoxes, _ := ds.Group("training").CreateTensor(ctx, deeplake.TensorSpec{Name: "boxes", Htype: "bbox"})

	spec := workload.ImageSpec{Height: 128, Width: 128, Channels: 3, Seed: 5}
	for i := 0; i < 60; i++ {
		must(images.Append(ctx, spec.Image(i)))
		// Reference box fixed; prediction drifts with i so IOU decays.
		ref, _ := deeplake.FromFloat64s(deeplake.Float32, []int{1, 4}, []float64{20, 20, 60, 60})
		must(refBoxes.Append(ctx, ref))
		pred, _ := deeplake.FromFloat64s(deeplake.Float32, []int{1, 4},
			[]float64{20 + float64(i%40), 20, 60, 60})
		must(boxes.Append(ctx, pred))
		must(labels.Append(ctx, workload.Label(5, i, 3)))
	}
	must(ds.Flush(ctx))

	query := `
		SELECT
			images[32:96, 32:96, 0:2] as crop,
			NORMALIZE(boxes, [32, 32, 64, 64]) as box,
			labels
		FROM detection
		WHERE IOU(boxes, "training/boxes") > 0.5
		ORDER BY IOU(boxes, "training/boxes")
		ARRANGE BY labels`

	// Show the logical plan first (§4.4 planner).
	plan, err := deeplake.Explain(query)
	must(err)
	fmt.Println("plan:")
	fmt.Println(plan)

	view, err := deeplake.Query(ctx, ds, query)
	must(err)
	fmt.Printf("\nquery selected %d/%d rows; columns %v\n", view.Len(), ds.NumRows(), view.ColumnNames())

	row, err := view.Row(ctx, 0)
	must(err)
	fmt.Printf("first row: crop %v, box %v (values %.2f)\n",
		row["crop"], row["box"].Shape(), row["box"].Float64s())

	// Materialize the sparse view into a dense, streamable dataset (§4.5).
	out, err := deeplake.Materialize(ctx, view, deeplake.NewMemoryStore(), "detection-curated")
	must(err)
	fmt.Printf("materialized %q: %d rows, tensors %v\n", out.Name(), out.NumRows(), out.Tensors())

	// The materialized dataset streams like any other.
	loader := deeplake.NewDatasetLoader(out, deeplake.LoaderOptions{BatchSize: 8, Workers: 4})
	n := 0
	for b := range loader.Batches(ctx) {
		n += len(b.Samples)
	}
	must(loader.Err())
	fmt.Printf("streamed %d curated samples\n", n)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
