// Versioning walks the Fig 4 lifecycle: an empty dataset evolves through
// commits, a branch diverges for relabeling, history is diffed, time travel
// inspects an old snapshot, and the branch merges back (§4.2, §5.2).
package main

import (
	"context"
	"fmt"
	"log"

	deeplake "repro"
)

func main() {
	ctx := context.Background()
	ds, err := deeplake.Create(ctx, deeplake.NewMemoryStore(), "lineage")
	if err != nil {
		log.Fatal(err)
	}
	labels, err := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "labels", Htype: "class_label"})
	if err != nil {
		log.Fatal(err)
	}

	// Commit 1: initial labels.
	for i := 0; i < 6; i++ {
		must(labels.Append(ctx, deeplake.Scalar(deeplake.Int32, float64(i%3))))
	}
	c1, err := ds.Commit(ctx, "initial labels")
	must(err)
	fmt.Printf("c1 = %s (%d samples)\n", c1, labels.Len())

	// Commit 2: more data on main.
	for i := 6; i < 10; i++ {
		must(labels.Append(ctx, deeplake.Scalar(deeplake.Int32, float64(i%3))))
	}
	c2, err := ds.Commit(ctx, "four more samples")
	must(err)
	fmt.Printf("c2 = %s (%d samples)\n", c2, labels.Len())

	// Branch: a relabeling experiment that edits sample 0 in place.
	must(ds.Checkout(ctx, "relabel", true))
	must(ds.Tensor("labels").SetAt(ctx, 0, deeplake.Scalar(deeplake.Int32, 99)))
	_, err = ds.Commit(ctx, "flip label of sample 0")
	must(err)
	fmt.Printf("on branch %q, labels[0] = %v\n", ds.Branch(), at(ctx, ds, 0))

	// Back on main the edit is invisible (branch isolation).
	must(ds.Checkout(ctx, "main", false))
	fmt.Printf("on branch %q, labels[0] = %v\n", ds.Branch(), at(ctx, ds, 0))

	// Diff the branches.
	diff, err := ds.Diff(ctx, "relabel", "main")
	must(err)
	fmt.Printf("diff vs base %s: relabel updated %v\n", diff.Base, diff.Left["labels"].Updated)

	// Time travel: read the c1 snapshot (§5.2 audit).
	old, err := ds.ReadAtVersion(ctx, c1)
	must(err)
	fmt.Printf("at %s the dataset had %d samples\n", c1, old.Tensor("labels").Len())

	// Versioned TQL query (§4.4).
	v, err := deeplake.Query(ctx, ds, fmt.Sprintf(`SELECT labels FROM lineage VERSION %q`, c1))
	must(err)
	fmt.Printf("TQL at version %s sees %d rows\n", c1, v.Len())

	// Merge the experiment back, taking the branch's relabels.
	must(ds.Merge(ctx, "relabel", deeplake.MergeTheirs))
	fmt.Printf("after merge, labels[0] = %v\n", at(ctx, ds, 0))

	// Full history, newest first.
	logNodes, err := ds.Log()
	must(err)
	fmt.Println("history:")
	for _, n := range logNodes {
		fmt.Printf("  %s  %s\n", n.ID, n.Message)
	}
}

func at(ctx context.Context, ds *deeplake.Dataset, idx uint64) float64 {
	arr, err := ds.Tensor("labels").At(ctx, idx)
	must(err)
	v, _ := arr.Item()
	return v
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
